"""Inherent information gain (Section 5.1, Eq. 6).

The gain of assigning cell ``c_ij`` to worker ``u`` is the expected reduction
in the cell's (uniform) entropy after one more answer by ``u``:

    IG(c_ij) = H(T_ij | A) - E_a [ H(T_ij | A + {a}) ]

For a categorical cell the expectation runs over the finite label set using
the worker's predictive answer distribution.  For a continuous cell the
Gaussian posterior's updated variance does not depend on the answer's value,
so the expected differential entropy has a closed form; a Monte-Carlo
estimator (the paper's ``s_cont`` sampling) is available for validation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.inference import VARIANCE_FLOOR, InferenceResult
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator


def _xlogx(values: np.ndarray) -> np.ndarray:
    """Elementwise ``x * ln(x)`` with the ``0 * ln(0) = 0`` convention."""
    return np.where(values > 0.0, values * np.log(np.maximum(values, 1e-300)), 0.0)


class InformationGainCalculator:
    """Computes the inherent information gain of Eq. 6 for (worker, cell) pairs.

    Parameters
    ----------
    result:
        A fitted :class:`InferenceResult` providing posteriors, worker
        qualities and cell difficulties.
    continuous_samples:
        0 (default) uses the exact closed form for continuous cells; a
        positive value uses Monte-Carlo sampling over hypothetical answers
        with that many samples, as described in the paper.
    seed:
        Seed for the sampling estimator.
    """

    def __init__(
        self,
        result: InferenceResult,
        continuous_samples: int = 0,
        seed=None,
    ) -> None:
        if continuous_samples < 0:
            raise ConfigurationError(
                f"continuous_samples must be >= 0, got {continuous_samples}"
            )
        self.result = result
        self.continuous_samples = int(continuous_samples)
        self._rng = as_generator(seed)
        self._cont_variance_grid: Optional[np.ndarray] = None
        self._cat_prob_grid: Optional[np.ndarray] = None
        # Schema-derived lookup tables used by every gains_batch call; the
        # schema is immutable, so build them once instead of per call.
        columns = result.schema.columns
        self._column_is_categorical = np.array(
            [column.is_categorical for column in columns], dtype=bool
        )
        self._num_labels_per_col = np.array(
            [
                column.num_labels if column.is_categorical else 0
                for column in columns
            ],
            dtype=np.int64,
        )
        self._max_labels = (
            int(self._num_labels_per_col.max()) if len(columns) else 0
        )

    # -- public API -----------------------------------------------------------

    def gain(
        self,
        worker: str,
        row: int,
        col: int,
        quality_override: Optional[float] = None,
        variance_override: Optional[float] = None,
    ) -> float:
        """Information gain of assigning cell ``(row, col)`` to ``worker``.

        ``quality_override`` (categorical cells) and ``variance_override``
        (continuous cells, original scale) replace the worker's inherent
        quality; the structure-aware calculator uses them to inject the
        row-conditioned error model of Section 5.2.
        """
        posterior = self.result.posterior(row, col)
        if isinstance(posterior, CategoricalPosterior):
            quality = (
                quality_override
                if quality_override is not None
                else self.result.cell_quality(worker, row, col)
            )
            return self._categorical_gain(posterior, quality)
        if isinstance(posterior, GaussianPosterior):
            variance = (
                variance_override
                if variance_override is not None
                else self.result.answer_variance(worker, row, col)
            )
            return self._continuous_gain(posterior, variance)
        raise ConfigurationError(
            f"Unsupported posterior type {type(posterior).__name__}"
        )

    def gains_for_worker(self, worker: str, candidates) -> dict:
        """Information gain for every candidate cell ``(row, col)``."""
        return {cell: self.gain(worker, cell[0], cell[1]) for cell in candidates}

    def prewarm(self) -> None:
        """Build the lazily-cached scoring tables eagerly.

        After this call :meth:`gains_batch` no longer mutates the calculator,
        so disjoint candidate blocks may be scored from concurrent threads
        (the sharded engine calls this before fanning out).
        """
        self._continuous_variance_grid()
        self._categorical_prob_grid()

    def gains_batch(
        self,
        worker: str,
        cells,
        quality_overrides: Optional[np.ndarray] = None,
        variance_overrides: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Information gain for many candidate cells in one vectorised pass.

        Equivalent to calling :meth:`gain` per cell (same closed forms, same
        clipping) but computed with shared variance/quality arrays.  The
        optional override arrays are aligned with ``cells``; ``NaN`` entries
        mean "no override" (the structure-aware calculator fills them only
        for cells with structural evidence).  Monte-Carlo mode
        (``continuous_samples > 0``) falls back to the scalar path.
        """
        cells = list(cells)
        gains = np.zeros(len(cells), dtype=float)
        if not cells:
            return gains
        if self.continuous_samples:
            for idx, (row, col) in enumerate(cells):
                quality = None
                variance = None
                if quality_overrides is not None and np.isfinite(quality_overrides[idx]):
                    quality = float(quality_overrides[idx])
                if variance_overrides is not None and np.isfinite(variance_overrides[idx]):
                    variance = float(variance_overrides[idx])
                gains[idx] = self.gain(
                    worker, row, col,
                    quality_override=quality, variance_override=variance,
                )
            return gains

        result = self.result
        rows = np.fromiter((cell[0] for cell in cells), dtype=np.int64, count=len(cells))
        cols = np.fromiter((cell[1] for cell in cells), dtype=np.int64, count=len(cells))
        is_categorical = self._column_is_categorical[cols]
        phi = result.phi_for(worker)
        standardized_variance = np.maximum(
            result.alpha[rows] * result.beta[cols] * phi, VARIANCE_FLOOR
        )

        continuous_idx = np.flatnonzero(~is_categorical)
        if continuous_idx.size:
            scale = np.asarray(result.column_scale, dtype=float)[cols[continuous_idx]]
            answer_variance = standardized_variance[continuous_idx] * scale**2
            if variance_overrides is not None:
                overrides = np.asarray(variance_overrides, dtype=float)[continuous_idx]
                answer_variance = np.where(
                    np.isfinite(overrides), overrides, answer_variance
                )
            answer_variance = np.maximum(answer_variance, 1e-12)
            grid = self._continuous_variance_grid()
            posterior_variance = grid[rows[continuous_idx], cols[continuous_idx]]
            updated = 1.0 / (1.0 / posterior_variance + 1.0 / answer_variance)
            gains[continuous_idx] = 0.5 * np.log(posterior_variance / updated)

        categorical_idx = np.flatnonzero(is_categorical)
        if categorical_idx.size:
            gains[categorical_idx] = self._categorical_gains_batch(
                rows[categorical_idx],
                cols[categorical_idx],
                standardized_variance[categorical_idx],
                None
                if quality_overrides is None
                else np.asarray(quality_overrides, dtype=float)[categorical_idx],
            )
        return gains

    def _continuous_variance_grid(self) -> np.ndarray:
        """Dense (rows, cols) posterior variances for continuous cells.

        Unanswered cells carry the prior variance used by
        :meth:`InferenceResult.posterior`; entries of categorical columns are
        never read.
        """
        if self._cont_variance_grid is None:
            result = self.result
            schema = result.schema
            prior = np.maximum(
                np.asarray(result.column_scale, dtype=float) ** 2, VARIANCE_FLOOR
            )
            grid = np.tile(prior, (schema.num_rows, 1))
            for (row, col), posterior in result.posteriors.items():
                if isinstance(posterior, GaussianPosterior):
                    grid[row, col] = posterior.variance
            self._cont_variance_grid = grid
        return self._cont_variance_grid

    def _categorical_prob_grid(self) -> np.ndarray:
        """Dense ``(rows, cols, max_labels)`` posterior label probabilities.

        Unanswered categorical cells carry the uniform prior (matching
        :meth:`InferenceResult.posterior`); slots past a column's label-set
        size stay zero and entries of continuous columns are never read.
        Built once per calculator — the per-call Python loop over candidate
        posteriors this replaces was the last O(candidates) interpreter
        cost on the categorical scoring path.
        """
        if self._cat_prob_grid is None:
            result = self.result
            schema = result.schema
            grid = np.zeros(
                (schema.num_rows, schema.num_columns, max(self._max_labels, 1))
            )
            for col in np.flatnonzero(self._column_is_categorical):
                count = self._num_labels_per_col[col]
                grid[:, col, :count] = 1.0 / count
            for (row, col), posterior in result.posteriors.items():
                if isinstance(posterior, CategoricalPosterior):
                    grid[row, col, : len(posterior.probs)] = posterior.probs
            self._cat_prob_grid = grid
        return self._cat_prob_grid

    def _categorical_gains_batch(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        standardized_variance: np.ndarray,
        quality_overrides: Optional[np.ndarray],
    ) -> np.ndarray:
        """Closed-form categorical delta entropy over padded label arrays.

        For each hypothetical answer ``z'`` the unnormalised updated
        posterior is ``u_z = p_z * wrong`` except ``u_z' = p_z' * q``, whose
        normaliser is exactly the predictive answer probability ``a_z'``;
        summing ``a_z' * H(u / a_z')`` over ``z'`` telescopes into sums of
        ``x ln x`` terms, so no per-label posterior objects are built.
        """
        result = self.result
        labels = self._num_labels_per_col[cols]
        max_labels = self._max_labels
        probs = self._categorical_prob_grid()[rows, cols]

        quality = np.asarray(
            result.worker_model.quality_from_variance(standardized_variance),
            dtype=float,
        )
        if quality_overrides is not None:
            quality = np.where(
                np.isfinite(quality_overrides), quality_overrides, quality
            )
        quality = np.clip(quality, 1e-9, 1.0 - 1e-9)
        wrong = (1.0 - quality) / np.maximum(labels - 1, 1)

        valid = np.arange(max_labels)[None, :] < labels[:, None]
        predictive = quality[:, None] * probs + wrong[:, None] * (1.0 - probs)
        predictive = np.where(valid, predictive, 0.0)
        f_wrong = _xlogx(probs * wrong[:, None])
        g_correct = _xlogx(probs * quality[:, None])
        base = f_wrong.sum(axis=1)
        expected_entropy = -(
            (labels - 1.0) * base + g_correct.sum(axis=1)
        ) + _xlogx(predictive).sum(axis=1)
        current_entropy = -_xlogx(probs).sum(axis=1)
        return current_entropy - expected_entropy

    # -- categorical ------------------------------------------------------------

    @staticmethod
    def _categorical_gain(posterior: CategoricalPosterior, quality: float) -> float:
        current_entropy = posterior.entropy()
        answer_probs = posterior.predictive_answer_probs(quality)
        expected_entropy = 0.0
        for label_index, answer_prob in enumerate(answer_probs):
            if answer_prob <= 0.0:
                continue
            updated = posterior.updated_with_answer(label_index, quality)
            expected_entropy += answer_prob * updated.entropy()
        return current_entropy - expected_entropy

    # -- continuous -------------------------------------------------------------

    def _continuous_gain(self, posterior: GaussianPosterior, answer_variance: float) -> float:
        answer_variance = max(float(answer_variance), 1e-12)
        if self.continuous_samples == 0:
            updated_variance = posterior.updated_variance(answer_variance)
            return 0.5 * float(np.log(posterior.variance / updated_variance))
        # Monte-Carlo estimator over hypothetical answers (paper's s_cont).
        predictive_std = float(np.sqrt(posterior.predictive_variance(answer_variance)))
        samples = self._rng.normal(posterior.mean, predictive_std, self.continuous_samples)
        current_entropy = posterior.entropy()
        expected_entropy = float(
            np.mean(
                [
                    posterior.updated_with_answer(sample, answer_variance).entropy()
                    for sample in samples
                ]
            )
        )
        return current_entropy - expected_entropy
