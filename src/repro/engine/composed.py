"""Composed serving mode: sharded scoring over async refit snapshots.

:class:`~repro.engine.ShardedAssignmentPolicy` partitions the candidate pool
and :class:`~repro.engine.AsyncRefitEngine` takes the EM refit off the select
path; until now they were mutually exclusive because the sharded scorer
pulled its model from the wrapped assigner's *synchronous* refit cadence.
:class:`ShardedAsyncPolicy` closes that gap (the ROADMAP's "compose the
serving modes" item): per-shard ``gains_batch`` scoring and the stable
top-K heap merge run exactly as in the sharded policy, but the gain
calculator is built over whatever immutable
:class:`~repro.engine.ModelSnapshot` the async engine currently serves —
read lock-free, refreshed by a background worker, bounded by
``max_stale_answers``.

The equivalence contract is the intersection of the two parents': at
``max_stale_answers=0`` every select blocks until the model has seen all
answers (reproducing the synchronous fit chain) and the partitioned merge is
a pure refactor of the monolithic top-K, so the composed policy replays the
synchronous engine's assignment sequence bit for bit — recorded as
``identical_assignments_sharded_async`` by the benchmark and pinned by the
golden-trace matrix.  With a positive bound the select path neither runs EM
nor rescans the table: it reads a snapshot and scores K row-range blocks
(optionally on a thread pool).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import InferenceResult
from repro.engine.profiling import HotPathProfile
from repro.engine.profiling import stage as _stage
from repro.engine.refit_worker import AsyncRefitEngine
from repro.engine.sharding import ShardedAssignmentPolicy
from repro.utils.exceptions import AssignmentError


class ShardedAsyncPolicy(ShardedAssignmentPolicy):
    """Partitioned top-K selection scored against async refit snapshots.

    Parameters
    ----------
    inner:
        The assigner whose model, gain configuration and refit cadence are
        reused (same restrictions as both parents: closed-form gains only).
    num_shards:
        Number of contiguous row-range shards.
    max_workers:
        Optional thread-pool size for concurrent per-shard scoring.
    max_stale_answers:
        Bounded-staleness knob (see :class:`~repro.engine.AsyncRefitEngine`).
        ``0`` blocks every select until the model is caught up — the
        synchronous-equivalent mode the golden trace pins.
    scoring_cache:
        Reuse the snapshot-derived gain calculator across selects (default
        on).  The calculator is a pure function of ``(snapshot, answer
        prefix)``, so it is cached under the key ``(epoch, answers_seen)``
        and rebuilt only when a refit publishes a new epoch or new answers
        arrive — instead of refitting the structure model on every select.
        Behaviour-neutral by construction: a cache hit requires the exact
        inputs the rebuild would have used.
    clock:
        ``None`` starts a private background refit thread; pass a
        :class:`~repro.engine.VirtualClock` for deterministic tests.
    """

    def __init__(
        self,
        inner: TCrowdAssigner,
        num_shards: int = 2,
        max_workers: Optional[int] = None,
        max_stale_answers: Optional[int] = 0,
        scoring_cache: bool = True,
        clock=None,
    ) -> None:
        super().__init__(inner, num_shards=num_shards, max_workers=max_workers)
        self.scoring_cache = bool(scoring_cache)
        self._cached_key: Optional[Tuple[int, int]] = None
        self._cached_calculator = None
        self._served_snapshot = None
        self.scoring_cache_hits = 0
        self.scoring_cache_misses = 0
        self.engine = AsyncRefitEngine(
            inner.model,
            inner.schema,
            refit_every=inner.refit_every,
            max_stale_answers=max_stale_answers,
            warm_start=inner.warm_start,
            tol=inner.refit_tol,
            clock=clock,
        )

    def set_profile(self, profile: Optional[HotPathProfile]) -> None:
        """Attach a profile to both the scorer and the refit engine."""
        super().set_profile(profile)
        self.engine.set_profile(profile)

    @property
    def name(self) -> str:
        return f"{self.inner.name} [sharded x{self.num_shards} + async refit]"

    @property
    def last_result(self) -> Optional[InferenceResult]:
        """The latest snapshot's inference result (None before any fit)."""
        snapshot = self.engine.snapshot
        return None if snapshot is None else snapshot.result

    # -- scoring seam --------------------------------------------------------

    def _scoring_calculator(self, answers: AnswerSet):
        """The per-select calculator over the served snapshot, cached.

        The calculator is fully determined by the snapshot's result and the
        answer prefix it scores over; with answers append-only, ``(epoch,
        len(answers))`` identifies both.  A hit therefore returns an object
        bit-identical to what a rebuild would produce — the profiling run
        showed this rebuild (structure-model fit included) dominating the
        composed select at small K, which is why composed barely beat the
        synchronous engine before.
        """
        if len(answers) == 0:
            raise AssignmentError(
                "T-Crowd assignment needs at least one collected answer; "
                "seed each task with initial answers first (Algorithm 2, line 1)"
            )
        with _stage(self.profile, "snapshot_acquire"):
            snapshot = self.engine.snapshot_for(answers)
        self._served_snapshot = snapshot
        if self.scoring_cache:
            key = (snapshot.epoch, len(answers))
            if key == self._cached_key and self._cached_calculator is not None:
                self.scoring_cache_hits += 1
                return self._cached_calculator
        with _stage(self.profile, "calculator_build"):
            calculator = self.inner.calculator_for(snapshot.result, answers)
        if self.scoring_cache:
            self.scoring_cache_misses += 1
            self._cached_key = (snapshot.epoch, len(answers))
            self._cached_calculator = calculator
        return calculator

    def _provenance_meta(self, answers: AnswerSet):
        """``(answers_seen, result)`` of the snapshot this select scored with."""
        snapshot = self._served_snapshot
        return snapshot.answers_seen, snapshot.result

    # -- policy --------------------------------------------------------------

    def observe(self, answers: AnswerSet) -> None:
        """Request a background refit for the newly arrived answers."""
        self.engine.notify(answers)

    def final_result(self, answers: AnswerSet) -> InferenceResult:
        """Blocking catch-up fit over all answers (end-of-session estimates)."""
        return self.engine.refit_now(answers).result

    # -- durability ----------------------------------------------------------

    def snapshot_state(self) -> Optional[Tuple[InferenceResult, int]]:
        """``(result, answers_seen)`` of the served snapshot (durable protocol)."""
        snapshot = self.engine.snapshot
        if snapshot is None:
            return None
        return snapshot.result, snapshot.answers_seen

    def restore_state(self, result: InferenceResult, answers_seen: int) -> None:
        """Re-seat a persisted snapshot (see :meth:`AsyncRefitEngine.restore`).

        Drops the scoring cache: the restored epoch numbering restarts, so
        a stale ``(epoch, answers_seen)`` key could otherwise collide.
        """
        self._cached_key = None
        self._cached_calculator = None
        self.engine.restore(result, answers_seen)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the scoring pool and the refit worker (idempotent)."""
        super().close()
        self.engine.close()
