"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from repro.utils.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value, name: str) -> None:
    """Require ``value`` to be strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_probability(value, name: str) -> None:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def require_in_range(value, low, high, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
