"""Process-level shard-worker coordinator tests.

Covers the :class:`~repro.engine.ProcessShardCoordinator` serving path end
to end:

* the in-process :class:`~repro.engine.ShardGroupScorer` state machine
  (WAL trailing, local top-K, snapshot/restore, the op dispatch);
* answer routing across shard boundaries (``owner_of_row`` /
  ``worker_of_shard`` — the routing table the WAL fan-out relies on);
* the compressed per-worker top-K merge against a single-process oracle
  for K in {1, 2, 4} — cells *and* gains bit-identical;
* worker crash mid-session: SIGKILL one shard worker and assert a fast
  :class:`~repro.utils.exceptions.ServiceUnavailableError` (a 503 through
  the HTTP service) instead of a hang, clean registry state, and a
  bit-equivalent session after ``restart_worker`` replays the WAL;
* the golden-trace scenario replayed through ``processes=2`` against the
  committed fixture ``tests/fixtures/golden_trace.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import time

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.datasets import load_celebrity
from repro.engine import ProcessShardCoordinator, ShardGroupScorer
from repro.engine.coordinator import (
    _json_seed,
    _read_new_records,
    build_worker_assigner,
    handle_request,
    worker_spec_from_assigner,
)
from repro.utils.exceptions import (
    AssignmentError,
    ConfigurationError,
    ReproError,
    ServiceUnavailableError,
)

GOLDEN_FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_trace.json"

#: Small fast model for the unit tiers (the golden replay uses the
#: fixture's own kwargs via ``repro.service.bench.DEFAULT_SCENARIO``).
FAST_MODEL = {"max_iterations": 4, "m_step_iterations": 8}


def _make_assigner(schema, **overrides):
    options = {"refit_every": 1, "warm_start": True}
    options.update(overrides)
    return TCrowdAssigner(schema, model=TCrowdModel(**FAST_MODEL), **options)


@pytest.fixture(scope="module")
def dataset():
    return load_celebrity(seed=7, num_rows=12)


@pytest.fixture(scope="module")
def seeded_answers(dataset):
    """One answer per cell from the scripted oracle (do not mutate; copy)."""
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(7)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        for col in range(schema.num_columns):
            answers.add_answer(
                worker, row, col, dataset.oracle.answer(worker, row, col, rng)
            )
    return answers


def _wal_record(answers, observe=False):
    delta = [
        [a.worker, int(a.row), int(a.col),
         a.value if isinstance(a.value, str) else float(a.value)]
        for a in answers
    ]
    return {"a": delta, "o": bool(observe)}


def _write_wal(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestWorkerSpecCodec:
    def test_round_trip_builds_an_equivalent_twin(self, dataset):
        schema = dataset.schema
        assigner = _make_assigner(schema, refit_every=2, vectorized=True)
        payload = worker_spec_from_assigner(assigner)
        # JSON-safe: the wire carries exactly this payload.
        twin = build_worker_assigner(schema, json.loads(json.dumps(payload)))
        assert twin.refit_every == assigner.refit_every
        assert twin.warm_start == assigner.warm_start
        assert twin.model.max_iterations == assigner.model.max_iterations
        assert twin.model.m_step_iterations == assigner.model.m_step_iterations

    def test_json_seed_keeps_plain_ints_only(self):
        assert _json_seed(7) == 7
        assert _json_seed(0) == 0
        assert _json_seed(None) is None
        assert _json_seed(True) is None  # bool is not a seed
        assert _json_seed(-1) is None
        assert _json_seed(np.int64(3)) is None  # numpy scalars do not travel


class TestReadNewRecords:
    def test_incremental_tail_read(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        _write_wal(path, [{"i": 0}, {"i": 1}])
        records, offset = _read_new_records(path, 0)
        assert [r["i"] for r in records] == [0, 1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"i": 2}) + "\n")
        records, offset = _read_new_records(path, offset)
        assert [r["i"] for r in records] == [2]

    def test_torn_tail_is_not_applied(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(json.dumps({"i": 0}) + "\n" + '{"i": 1', encoding="utf-8")
        records, offset = _read_new_records(path, 0)
        assert [r["i"] for r in records] == [0]
        # The torn line stays unread until its newline lands.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("}\n")
        records, _ = _read_new_records(path, offset)
        assert [r["i"] for r in records] == [1]


class TestShardGroupScorer:
    def _scorer(self, dataset, tmp_path, shard_lo=0, shard_hi=3, num_shards=3):
        schema = dataset.schema
        payload = worker_spec_from_assigner(_make_assigner(schema))
        wal = tmp_path / "answers.wal"
        wal.touch()
        return ShardGroupScorer(
            schema, payload, num_shards, shard_lo, shard_hi, wal
        )

    def test_sync_applies_records_and_observe_bumps_epoch(
        self, dataset, tmp_path, seeded_answers
    ):
        scorer = self._scorer(dataset, tmp_path)
        _write_wal(tmp_path / "answers.wal", [_wal_record(seeded_answers, observe=True)])
        state = scorer.sync_to(1)
        assert len(scorer.answers) == len(seeded_answers)
        assert scorer.records_applied == 1
        assert state["epoch"] == 1
        assert state["answers_seen"] == len(seeded_answers)

    def test_sync_backwards_raises(self, dataset, tmp_path, seeded_answers):
        scorer = self._scorer(dataset, tmp_path)
        _write_wal(tmp_path / "answers.wal", [_wal_record(seeded_answers)])
        scorer.sync_to(1)
        with pytest.raises(ServiceUnavailableError, match="backwards"):
            scorer.sync_to(0)

    def test_short_wal_raises(self, dataset, tmp_path):
        scorer = self._scorer(dataset, tmp_path)
        with pytest.raises(ServiceUnavailableError, match="short"):
            scorer.sync_to(3)

    def test_select_scores_only_the_owned_block(
        self, dataset, tmp_path, seeded_answers
    ):
        schema = dataset.schema
        _write_wal(tmp_path / "answers.wal", [_wal_record(seeded_answers, observe=True)])
        whole = self._scorer(dataset, tmp_path, 0, 3)
        whole.sync_to(1)
        count_all, top_all, _ = whole.select("probe-worker", 4)
        assert count_all == schema.num_cells  # fresh worker: every cell open
        assert len(top_all) == 4
        gains = [gain for gain, _, _ in top_all]
        assert gains == sorted(gains, reverse=True)

        part = self._scorer(dataset, tmp_path, 0, 1)
        part.sync_to(1)
        count_part, top_part, _ = part.select("probe-worker", 4)
        assert 0 < count_part < count_all
        # Every scored cell belongs to the owned shard's row block.
        for _, row, _ in top_part:
            assert part._state.shard_of_row(row) == 0

    def test_select_with_empty_block_still_refits(
        self, dataset, tmp_path, seeded_answers
    ):
        # A worker whose block has no candidates returns (0, []) but its
        # refit chain must advance — that is the equivalence contract.
        schema = dataset.schema
        scorer = self._scorer(dataset, tmp_path, 2, 3)
        extra = AnswerSet(schema)
        for a in seeded_answers:
            extra.add_answer(a.worker, a.row, a.col, a.value)
        for row in range(schema.num_rows):
            for col in range(schema.num_columns):
                column = schema.columns[col]
                extra.add_answer(
                    "blockw", row, col,
                    column.labels[0] if column.is_categorical else 1.0,
                )
        _write_wal(tmp_path / "answers.wal", [_wal_record(extra)])
        scorer.sync_to(1)
        count, top, _ = scorer.select("blockw", 2)
        assert (count, top) == (0, [])
        assert scorer.epoch >= 1  # the select-time refit was published

    def test_final_snapshot_restore_round_trip(
        self, dataset, tmp_path, seeded_answers
    ):
        scorer = self._scorer(dataset, tmp_path)
        assert scorer.snapshot() == {"state": None}  # before any fit
        _write_wal(tmp_path / "answers.wal", [_wal_record(seeded_answers, observe=True)])
        scorer.sync_to(1)
        final = scorer.final()
        assert final["answers_seen"] == len(seeded_answers)
        snap = scorer.snapshot()
        assert snap["state"] is not None
        assert snap["state"]["answers_seen"] == len(seeded_answers)

        other = self._scorer(dataset, tmp_path)
        state = other.restore(snap["state"])
        assert state["answers_seen"] == len(seeded_answers)
        assert other.epoch == 1

    def test_handle_request_dispatch_and_unknown_op(
        self, dataset, tmp_path, seeded_answers
    ):
        scorer = self._scorer(dataset, tmp_path)
        _write_wal(tmp_path / "answers.wal", [_wal_record(seeded_answers, observe=True)])
        assert handle_request(scorer, {"op": "sync", "count": 1})["answers_seen"] > 0
        reply = handle_request(scorer, {"op": "select", "worker": "w", "k": 2})
        assert reply["n"] > 0 and len(reply["top"]) == 2
        assert "result" in handle_request(scorer, {"op": "final"})
        snap = handle_request(scorer, {"op": "snapshot"})
        assert snap["state"] is not None
        restored = handle_request(scorer, {"op": "restore", **snap["state"]})
        assert restored["answers_seen"] == snap["state"]["answers_seen"]
        stats = handle_request(scorer, {"op": "stats"})
        assert stats["shards"] == [0, 3]
        assert stats["wal_records"] == 1
        with pytest.raises(ConfigurationError, match="unknown worker op"):
            handle_request(scorer, {"op": "compact"})


class TestCoordinatorValidation:
    def test_rejects_non_tcrowd_policy(self, dataset):
        class FakePolicy:
            pass

        with pytest.raises(ConfigurationError, match="TCrowdAssigner"):
            ProcessShardCoordinator(FakePolicy())

    def test_rejects_monte_carlo_gains(self, dataset):
        assigner = _make_assigner(dataset.schema, continuous_samples=16)
        with pytest.raises(ConfigurationError, match="continuous_samples"):
            ProcessShardCoordinator(assigner)

    def test_rejects_zero_processes(self, dataset):
        with pytest.raises(ConfigurationError, match="processes"):
            ProcessShardCoordinator(_make_assigner(dataset.schema), processes=0)


@pytest.fixture(scope="module")
def coordinator(dataset):
    """One long-lived processes=2 / shards=3 coordinator for the read tests."""
    with ProcessShardCoordinator(
        _make_assigner(dataset.schema), processes=2, num_shards=3
    ) as coord:
        yield coord


class TestAnswerRouting:
    def test_contiguous_shard_groups_cover_all_shards(self, coordinator):
        owners = [coordinator.worker_of_shard(s) for s in range(coordinator.num_shards)]
        assert owners == sorted(owners)  # contiguous groups
        assert set(owners) == {0, 1}
        with pytest.raises(ConfigurationError, match="outside"):
            coordinator.worker_of_shard(coordinator.num_shards)

    def test_every_row_routes_to_its_shard_owner(self, dataset, coordinator):
        seen = set()
        for row in range(dataset.schema.num_rows):
            owner = coordinator.owner_of_row(row)
            shard = coordinator._state.shard_of_row(row)
            assert owner == coordinator.worker_of_shard(shard)
            seen.add(owner)
        assert seen == {0, 1}  # rows cross the process boundary

    def test_worker_states_report_topology(self, coordinator):
        states = coordinator.worker_states()
        assert len(states) == 2
        shards = [tuple(state["shards"]) for state in states]
        assert shards[0][1] == shards[1][0]  # adjacent half-open ranges
        assert shards[0][0] == 0
        assert shards[-1][1] == coordinator.num_shards

    def test_name_and_last_result(self, coordinator):
        assert "[processes x2]" in coordinator.name
        assert coordinator.last_result is None  # nothing fitted yet


def _drive_pair(dataset, oracle, coord, k, steps=4):
    """Step ``oracle`` and ``coord`` in lockstep; return both trails."""
    schema = dataset.schema
    pool = dataset.worker_pool
    worker_ids, activities = pool.worker_ids(), pool.activities()
    rng = np.random.default_rng(7)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        for col in range(schema.num_columns):
            answers.add_answer(
                worker, row, col, dataset.oracle.answer(worker, row, col, rng)
            )
    oracle_trail, coord_trail = [], []
    taken = failures = 0
    while taken < steps and failures < 30:
        worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
        try:
            want = oracle.select(worker, answers, k=k)
        except AssignmentError:
            with pytest.raises(AssignmentError):
                coord.select(worker, answers, k=k)
            failures += 1
            continue
        got = coord.select(worker, answers, k=k)
        oracle_trail.append((worker, want.cells, tuple(float(g) for g in want.gains)))
        coord_trail.append((worker, got.cells, tuple(float(g) for g in got.gains)))
        for row, col in want.cells:
            answers.add_answer(
                worker, row, col, dataset.oracle.answer(worker, row, col, rng)
            )
        oracle.observe(answers)
        coord.observe(answers)
        taken += 1
        failures = 0
    assert taken == steps
    return oracle_trail, coord_trail


class TestTopKMergeEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_merged_top_k_matches_single_process_oracle(self, dataset, k):
        oracle = _make_assigner(dataset.schema)
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=3, num_shards=3
        ) as coord:
            oracle_trail, coord_trail = _drive_pair(dataset, oracle, coord, k)
        assert coord_trail == oracle_trail  # cells AND gains, bit for bit

    def test_final_result_matches_oracle(self, dataset, seeded_answers):
        oracle = _make_assigner(dataset.schema)
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=2, num_shards=3
        ) as coord:
            want = oracle.final_result(seeded_answers)
            got = coord.final_result(seeded_answers)
            assert coord.last_result is got
            for row in range(dataset.schema.num_rows):
                for col in range(dataset.schema.num_columns):
                    assert got.estimate(row, col) == want.estimate(row, col)

    def test_select_rejects_bad_k_and_exhausted_worker(self, dataset, seeded_answers):
        schema = dataset.schema
        with ProcessShardCoordinator(
            _make_assigner(schema), processes=2
        ) as coord:
            with pytest.raises(AssignmentError, match="k must be"):
                coord.select("w", seeded_answers, k=0)
            # Saturate one worker: after answering every open candidate
            # cell, its select must fail with the single-process message.
            answers = seeded_answers.copy()
            state = coord.session_state(answers)
            for row, col in list(state.candidate_cells("greedy-worker")):
                column = schema.columns[col]
                value = column.labels[0] if column.is_categorical else 1.0
                answers.add_answer("greedy-worker", row, col, value)
            assert not coord.candidate_cells("greedy-worker", answers)
            with pytest.raises(AssignmentError, match="No candidate cells"):
                coord.select("greedy-worker", answers, k=1)


def _kill_worker(coord, index):
    handle = coord._workers[index]
    os.kill(handle.process.pid, signal.SIGKILL)
    handle.process.join(timeout=10)
    assert not handle.process.is_alive()


class TestWorkerCrash:
    def test_sigkill_surfaces_as_service_unavailable(self, dataset, seeded_answers):
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=2, num_shards=3
        ) as coord:
            _kill_worker(coord, 1)
            with pytest.raises(ServiceUnavailableError, match="shard worker 1"):
                coord.select("fresh-worker", seeded_answers, k=2)
            # The registry stays consistent: the dead worker reports None,
            # the survivor keeps answering stats probes.
            states = coord.worker_states()
            assert states[1] is None
            assert states[0] is not None
            # Every subsequent call fails fast too (no hang, no retry loop).
            with pytest.raises(ServiceUnavailableError):
                coord.select("fresh-worker", seeded_answers, k=2)

    def test_restart_replays_the_wal_and_stays_bit_identical(self, dataset):
        oracle = _make_assigner(dataset.schema)
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=2, num_shards=3
        ) as coord:
            schema = dataset.schema
            pool = dataset.worker_pool
            worker_ids, activities = pool.worker_ids(), pool.activities()
            rng = np.random.default_rng(7)
            answers = AnswerSet(schema)
            for row in range(schema.num_rows):
                worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
                for col in range(schema.num_columns):
                    answers.add_answer(
                        worker, row, col,
                        dataset.oracle.answer(worker, row, col, rng),
                    )
            trail = []
            for step in range(4):
                if step == 2:
                    _kill_worker(coord, 0)
                    with pytest.raises(ServiceUnavailableError):
                        coord.select(worker_ids[0], answers, k=2)
                    coord.restart_worker(0)
                worker = worker_ids[int(rng.choice(len(worker_ids), p=activities))]
                want = oracle.select(worker, answers, k=2)
                got = coord.select(worker, answers, k=2)
                trail.append((step, got.cells == want.cells,
                              tuple(got.gains) == tuple(want.gains)))
                for row, col in want.cells:
                    answers.add_answer(
                        worker, row, col,
                        dataset.oracle.answer(worker, row, col, rng),
                    )
                oracle.observe(answers)
                coord.observe(answers)
            assert all(cells_ok and gains_ok for _, cells_ok, gains_ok in trail)

    def test_worker_init_failure_surfaces_at_spawn(self, dataset, seeded_answers):
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=2
        ) as coord:
            coord.observe(seeded_answers)
            # A respawned worker that cannot replay the spool reports the
            # failure in its ready message instead of hanging the select.
            coord._init_common["wal_path"] = str(coord._spool / "missing.wal")
            with pytest.raises(ReproError):
                coord.restart_worker(0)
            assert coord.worker_states()[0] is None

    def test_caller_spool_dir_is_kept_on_close(self, dataset, tmp_path, seeded_answers):
        spool = tmp_path / "spool"
        with ProcessShardCoordinator(
            _make_assigner(dataset.schema), processes=2, spool_dir=spool,
            request_timeout=30.0,
        ) as coord:
            coord.observe(seeded_answers)
            assert (spool / "answers.wal").exists()
        # A caller-provided spool survives close (it is the caller's to keep).
        assert (spool / "answers.wal").exists()

    def test_close_is_idempotent_and_restart_after_close_raises(self, dataset):
        coord = ProcessShardCoordinator(_make_assigner(dataset.schema), processes=2)
        spool = coord._spool
        coord.close()
        assert not spool.exists()  # owned spool removed
        coord.close()  # second close is a no-op
        with pytest.raises(ServiceUnavailableError, match="closed"):
            coord.restart_worker(0)
        with pytest.raises(ServiceUnavailableError):
            coord.select("w", AnswerSet(dataset.schema), k=1)


class TestServiceIntegration:
    def test_dead_worker_is_a_503_not_a_hang(self, dataset):
        from repro.config import SessionSpec
        from repro.service.app import ServiceServer
        from repro.service.bench import ServiceClient
        from repro.service.registry import schema_to_dict

        schema = dataset.schema
        spec = (
            SessionSpec.builder()
            .model(**FAST_MODEL)
            .policy(refit_every=1)
            .serving(processes=2, shards=3)
            .build()
        )
        with ServiceServer() as server:
            client = ServiceClient(server.address, timeout=30.0)
            session = client.create_session(
                {"schema": schema_to_dict(schema), **spec.to_dict()}
            )
            session_id = session["session_id"]
            assert "processes x2" in session["policy"]
            for row in range(schema.num_rows):
                client.post_answers(
                    session_id, "seeder",
                    [(row, col, 0.0 if not schema.columns[col].is_categorical
                      else schema.columns[col].labels[0])
                     for col in range(schema.num_columns)],
                )
            status, body = client.get_tasks(session_id, "fresh-worker", k=2)
            assert status == 200, (status, body)

            policy = server.registry.get(session_id).durable.policy
            _kill_worker(policy, 0)
            started = time.monotonic()
            status, body = client.get_tasks(session_id, "fresh-worker", k=2)
            assert status == 503, (status, body)
            assert "shard worker 0" in body["error"]
            assert time.monotonic() - started < 30.0  # fail fast, no hang
            # The rest of the registry still serves.
            health = client.healthz()
            assert health["status"] == "ok"
            client.delete_session(session_id)


class TestGoldenTraceMultiprocess:
    def test_scripted_replay_matches_the_committed_fixture(self):
        from repro.service.bench import run_scripted_session

        golden = json.loads(GOLDEN_FIXTURE.read_text(encoding="utf-8"))
        outcome = run_scripted_session("multiprocess")
        decisions = [
            (worker, tuple((int(r), int(c)) for r, c in cells))
            for worker, cells in golden["decisions"]
        ]
        assert outcome["decisions"] == decisions, (
            "processes=2 diverged from the committed golden trace"
        )
        estimates = {
            (int(key.split(",")[0]), int(key.split(",")[1])): value
            for key, value in golden["final_estimates"].items()
        }
        got = {
            key: value if isinstance(value, str) else float(value)
            for key, value in outcome["estimates"].items()
        }
        assert got == estimates
