"""Figures 11 and 12 — efficiency of assignment and truth inference.

* Figure 11 — time to compute the structure-aware information gain for all
  candidate cells when a new worker arrives, as a function of the average
  number of answers collected per task (Celebrity).
* Figure 12(a) — EM objective value per iteration (convergence, Celebrity).
* Figure 12(b) — truth-inference runtime as a function of the number of
  answers (synthetic datasets of growing size).

Absolute times differ from the paper's 2012-era Python 2.7 testbed; the
relevant reproduction target is the *linear* scaling in the number of
answers (the complexity analyses at the end of Sections 4.3 and 5.1).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.core.inference import TCrowdModel
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.datasets import generate_synthetic, load_celebrity
from repro.experiments.reporting import ExperimentReport


def run_figure11_assignment_time(
    answers_per_task_levels: Iterable[int] = (2, 3, 4, 5),
    seed: int = 7,
    num_rows: Optional[int] = 60,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 11: time to score all candidate cells for one incoming worker."""
    report = ExperimentReport(
        experiment_id="figure11",
        title="Efficiency of task assignment (Celebrity)",
        headers=["answers per task", "candidate cells", "seconds"],
    )
    points = []
    for level in answers_per_task_levels:
        kwargs = {"seed": seed, "answers_per_task": int(level)}
        if num_rows:
            kwargs["num_rows"] = num_rows
        dataset = load_celebrity(**kwargs)
        model = TCrowdModel(**(model_kwargs or {"max_iterations": 15}))
        result = model.fit(dataset.schema, dataset.answers)
        worker = dataset.answers.workers[0]
        calculator = StructureAwareGainCalculator(result, dataset.answers)
        candidates = list(dataset.schema.cells())
        start = time.perf_counter()
        for row, col in candidates:
            calculator.gain(worker, row, col)
        elapsed = time.perf_counter() - start
        report.add_row(int(level), len(candidates), elapsed)
        points.append((int(level), elapsed))
    report.add_series("assignment seconds", points)
    report.add_note(
        f"num_rows={num_rows or 'paper size'}; one full scoring pass of the "
        "structure-aware information gain over every cell for one worker"
    )
    return report


def run_figure12_convergence(
    seed: int = 7,
    num_rows: Optional[int] = None,
    max_iterations: int = 20,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 12(a): EM objective value per iteration on Celebrity."""
    kwargs = {"seed": seed}
    if num_rows:
        kwargs["num_rows"] = num_rows
    dataset = load_celebrity(**kwargs)
    options = dict(model_kwargs or {})
    options.setdefault("max_iterations", max_iterations)
    model = TCrowdModel(**options)
    result = model.fit(dataset.schema, dataset.answers)
    report = ExperimentReport(
        experiment_id="figure12a",
        title="Truth inference convergence (objective value per EM iteration)",
        headers=["iteration", "objective value"],
    )
    points = [
        (iteration + 1, value)
        for iteration, value in enumerate(result.objective_trace)
    ]
    for iteration, value in points:
        report.add_row(iteration, value)
    report.add_series("objective", points)
    report.add_note(
        f"converged={result.converged} after {result.n_iterations} iterations "
        f"on {dataset.name} ({len(dataset.answers)} answers)"
    )
    return report


def run_figure12_runtime(
    answer_counts: Iterable[int] = (1_000, 3_000, 10_000, 30_000),
    seed: int = 7,
    answers_per_task: int = 5,
    num_columns: int = 10,
    model_kwargs: Optional[dict] = None,
) -> ExperimentReport:
    """Figure 12(b): truth-inference runtime vs number of answers (synthetic)."""
    report = ExperimentReport(
        experiment_id="figure12b",
        title="Truth inference running time vs number of answers",
        headers=["answers", "rows", "seconds", "answers per second"],
    )
    points = []
    for target in answer_counts:
        num_rows = max(int(target) // (answers_per_task * num_columns), 2)
        dataset = generate_synthetic(
            num_rows=num_rows,
            num_columns=num_columns,
            categorical_ratio=0.5,
            answers_per_task=answers_per_task,
            seed=seed,
        )
        model = TCrowdModel(**(model_kwargs or {"max_iterations": 15}))
        start = time.perf_counter()
        model.fit(dataset.schema, dataset.answers)
        elapsed = time.perf_counter() - start
        report.add_row(
            len(dataset.answers), num_rows, elapsed, len(dataset.answers) / elapsed
        )
        points.append((len(dataset.answers), elapsed))
    report.add_series("seconds", points)
    report.add_note(
        "The paper reports ~100 answers/second on a 2012-era machine; the "
        "reproduction target is the linear scaling, not the absolute rate."
    )
    return report
