"""Tests for T-Crowd truth inference (repro.core.inference)."""

import numpy as np
import pytest

from repro.baselines import MajorityVoting, MedianAggregator
from repro.core.answers import AnswerSet
from repro.core.inference import TCrowdModel
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.core.restricted import TCrowdCategoricalOnly, TCrowdContinuousOnly
from repro.core.schema import Column, TableSchema
from repro.utils.exceptions import ConfigurationError, InferenceError


class TestFitBasics:
    def test_fit_returns_posteriors_for_answered_cells(self, mixed_schema, mixed_answers, fitted_result):
        answered = {(a.row, a.col) for a in mixed_answers}
        assert set(fitted_result.posteriors) == answered

    def test_posterior_types_match_column_types(self, mixed_schema, fitted_result):
        for (row, col), posterior in fitted_result.posteriors.items():
            if mixed_schema.columns[col].is_categorical:
                assert isinstance(posterior, CategoricalPosterior)
            else:
                assert isinstance(posterior, GaussianPosterior)

    def test_estimates_cover_every_cell(self, mixed_schema, fitted_result):
        estimates = fitted_result.estimates()
        assert len(estimates) == mixed_schema.num_cells

    def test_estimate_values_valid(self, mixed_schema, fitted_result):
        for (row, col), value in fitted_result.estimates().items():
            column = mixed_schema.columns[col]
            if column.is_categorical:
                assert column.contains_label(value)
            else:
                assert isinstance(value, float)

    def test_unanswered_cell_gets_prior_posterior(self, mixed_schema, fitted_result):
        # Cells outside the schema bounds are invalid, but any unanswered
        # valid cell should produce a prior-based posterior.
        missing = None
        for cell in mixed_schema.cells():
            if cell not in fitted_result.posteriors:
                missing = cell
                break
        if missing is None:
            pytest.skip("every cell was answered in this fixture")
        posterior = fitted_result.posterior(*missing)
        assert posterior.entropy() > 0

    def test_difficulties_positive(self, fitted_result):
        assert np.all(fitted_result.alpha > 0)
        assert np.all(fitted_result.beta > 0)
        assert np.all(fitted_result.phi > 0)

    def test_difficulty_normalisation(self, fitted_result):
        # Geometric means of alpha and beta are anchored at one.
        assert np.exp(np.mean(np.log(fitted_result.alpha))) == pytest.approx(1.0, rel=1e-6)
        assert np.exp(np.mean(np.log(fitted_result.beta))) == pytest.approx(1.0, rel=1e-6)

    def test_row_and_column_difficulty_accessors(self, fitted_result):
        assert fitted_result.row_difficulty(0) == pytest.approx(float(fitted_result.alpha[0]))
        assert fitted_result.column_difficulty(1) == pytest.approx(float(fitted_result.beta[1]))

    def test_objective_trace_monotone_overall(self, fitted_result):
        trace = fitted_result.objective_trace
        assert len(trace) >= 2
        assert trace[-1] >= trace[0]

    def test_empty_answer_set_rejected(self, mixed_schema):
        with pytest.raises(InferenceError):
            TCrowdModel().fit(mixed_schema, AnswerSet(mixed_schema))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            TCrowdModel(epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            TCrowdModel(max_iterations=0)


class TestWorkerQuality:
    def test_worker_quality_in_unit_interval(self, fitted_result):
        for worker in fitted_result.worker_ids:
            assert 0.0 < fitted_result.worker_quality(worker) < 1.0

    def test_worker_quality_ranking_matches_latent(self, fitted_result, worker_variances):
        # Better (lower-variance) workers should receive higher quality.
        qualities = fitted_result.worker_qualities()
        assert qualities["expert"] > qualities["average"] > qualities["spammer"]

    def test_unknown_worker_raises(self, fitted_result):
        with pytest.raises(InferenceError):
            fitted_result.worker_variance("nobody")

    def test_has_worker(self, fitted_result):
        assert fitted_result.has_worker("expert")
        assert not fitted_result.has_worker("nobody")

    def test_cell_quality_depends_on_difficulty(self, fitted_result, mixed_schema):
        worker = fitted_result.worker_ids[0]
        hardest_row = int(np.argmax(fitted_result.alpha))
        easiest_row = int(np.argmin(fitted_result.alpha))
        col = 0
        assert fitted_result.cell_quality(worker, easiest_row, col) >= fitted_result.cell_quality(
            worker, hardest_row, col
        )

    def test_answer_variance_in_original_scale(self, fitted_result, mixed_schema):
        worker = fitted_result.worker_ids[0]
        cont_col = mixed_schema.continuous_indices[0]
        cat_col = mixed_schema.categorical_indices[0]
        cont_var = fitted_result.answer_variance(worker, 0, cont_col)
        std_var = fitted_result.standardized_answer_variance(worker, 0, cont_col)
        scale = float(fitted_result.column_scale[cont_col])
        assert cont_var == pytest.approx(std_var * scale**2)
        # Categorical columns have scale one.
        assert fitted_result.answer_variance(worker, 0, cat_col) == pytest.approx(
            fitted_result.standardized_answer_variance(worker, 0, cat_col)
        )


class TestAccuracy:
    def test_beats_majority_voting_on_categorical(self, mixed_schema, mixed_answers, mixed_truth, fitted_result):
        mv = MajorityVoting().fit(mixed_schema, mixed_answers)
        cat_cells = [
            cell for cell in mixed_truth if mixed_schema.columns[cell[1]].is_categorical
        ]
        tcrowd_errors = sum(
            fitted_result.estimate(*cell) != mixed_truth[cell] for cell in cat_cells
        )
        mv_errors = sum(
            mv.estimate(*cell) != mixed_truth[cell] for cell in cat_cells
        )
        assert tcrowd_errors <= mv_errors

    def test_beats_median_on_continuous(self, mixed_schema, mixed_answers, mixed_truth, fitted_result):
        median = MedianAggregator().fit(mixed_schema, mixed_answers)
        cont_cells = [
            cell for cell in mixed_truth if mixed_schema.columns[cell[1]].is_continuous
        ]
        tcrowd_rmse = np.sqrt(np.mean([
            (fitted_result.estimate(*cell) - mixed_truth[cell]) ** 2 for cell in cont_cells
        ]))
        median_rmse = np.sqrt(np.mean([
            (median.estimate(*cell) - mixed_truth[cell]) ** 2 for cell in cont_cells
        ]))
        assert tcrowd_rmse <= median_rmse * 1.05

    def test_reproducible_given_same_inputs(self, mixed_schema, mixed_answers):
        result_a = TCrowdModel(max_iterations=10, seed=3).fit(mixed_schema, mixed_answers)
        result_b = TCrowdModel(max_iterations=10, seed=3).fit(mixed_schema, mixed_answers)
        assert np.allclose(result_a.phi, result_b.phi)
        assert result_a.estimates() == result_b.estimates()


class TestVariants:
    def test_use_difficulty_false_fixes_alpha_beta(self, mixed_schema, mixed_answers):
        result = TCrowdModel(max_iterations=8, use_difficulty=False).fit(
            mixed_schema, mixed_answers
        )
        assert np.allclose(result.alpha, 1.0)
        assert np.allclose(result.beta, 1.0)

    def test_no_standardisation_still_works(self, mixed_schema, mixed_answers):
        result = TCrowdModel(max_iterations=8, standardize_continuous=False).fit(
            mixed_schema, mixed_answers
        )
        assert np.allclose(result.column_scale, 1.0)
        assert len(result.estimates()) == mixed_schema.num_cells

    def test_categorical_only_variant(self, mixed_schema, mixed_answers):
        result = TCrowdCategoricalOnly(max_iterations=8).fit(mixed_schema, mixed_answers)
        cat_cols = set(mixed_schema.categorical_indices)
        assert all(col in cat_cols for (_row, col) in result.posteriors)

    def test_continuous_only_variant(self, mixed_schema, mixed_answers):
        result = TCrowdContinuousOnly(max_iterations=8).fit(mixed_schema, mixed_answers)
        cont_cols = set(mixed_schema.continuous_indices)
        assert all(col in cont_cols for (_row, col) in result.posteriors)

    def test_restricted_variant_requires_matching_columns(self, mixed_answers):
        schema = TableSchema.build(
            "e", [Column.continuous("x", (0, 1)), Column.continuous("y", (0, 1))], 3
        )
        with pytest.raises(InferenceError):
            TCrowdCategoricalOnly().fit(schema, AnswerSet(schema))

    def test_single_datatype_tables(self):
        # All-continuous table.
        schema = TableSchema.build(
            "e", [Column.continuous("a", (0, 10)), Column.continuous("b", (0, 10))], 5
        )
        rng = np.random.default_rng(0)
        answers = AnswerSet(schema)
        for i in range(5):
            for j in range(2):
                for worker in ("w1", "w2", "w3"):
                    answers.add_answer(worker, i, j, float(rng.uniform(0, 10)))
        result = TCrowdModel(max_iterations=5).fit(schema, answers)
        assert len(result.estimates()) == 10

        # All-categorical table.
        schema2 = TableSchema.build(
            "e", [Column.categorical("c", ["x", "y"]), Column.categorical("d", ["p", "q", "r"])], 4
        )
        answers2 = AnswerSet(schema2)
        for i in range(4):
            answers2.add_answer("w1", i, 0, "x")
            answers2.add_answer("w2", i, 0, "x")
            answers2.add_answer("w1", i, 1, "p")
            answers2.add_answer("w2", i, 1, "q")
        result2 = TCrowdModel(max_iterations=5).fit(schema2, answers2)
        assert result2.estimate(0, 0) == "x"
