"""Tests for the incremental assignment engine (repro.engine) and its
warm-start / vectorised counterparts in repro.core."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner, top_k_stable
from repro.core.inference import TCrowdModel
from repro.core.information_gain import InformationGainCalculator
from repro.core.posteriors import Posterior
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.datasets import generate_synthetic
from repro.engine import SessionState


@pytest.fixture()
def fast_model():
    return TCrowdModel(max_iterations=8, m_step_iterations=12)


def _legacy_candidates(schema, answers, worker, cap=None):
    counts = answers.answer_counts()
    cells = []
    for i in range(schema.num_rows):
        for j in range(schema.num_columns):
            if cap is not None and counts[i, j] >= cap:
                continue
            if answers.has_answered(worker, i, j):
                continue
            cells.append((i, j))
    return cells


class TestSessionState:
    def test_incremental_counts_match_full_rescan(self, mixed_schema):
        """Counts stay exact under interleaved inserts and syncs."""
        rng = np.random.default_rng(5)
        answers = AnswerSet(mixed_schema)
        state = SessionState(mixed_schema)
        workers = [f"w{i}" for i in range(6)]
        for step in range(60):
            worker = workers[int(rng.integers(len(workers)))]
            row = int(rng.integers(mixed_schema.num_rows))
            col = int(rng.integers(mixed_schema.num_columns))
            column = mixed_schema.columns[col]
            value = (
                column.labels[int(rng.integers(column.num_labels))]
                if column.is_categorical
                else float(rng.normal())
            )
            answers.add_answer(worker, row, col, value)
            # Sync at irregular intervals so several answers arrive per sync.
            if step % 3 == 0:
                state.sync(answers)
                assert np.array_equal(state.counts, answers.answer_counts())
        state.sync(answers)
        assert np.array_equal(state.counts, answers.answer_counts())
        for worker in workers:
            for i in range(mixed_schema.num_rows):
                for j in range(mixed_schema.num_columns):
                    assert state.has_answered(worker, i, j) == answers.has_answered(
                        worker, i, j
                    )

    def test_candidates_match_legacy_scan(self, mixed_schema, mixed_answers):
        for cap in (None, 3, 5):
            state = SessionState(mixed_schema, max_answers_per_cell=cap)
            state.sync(mixed_answers)
            for worker in mixed_answers.workers + ["brand-new"]:
                assert state.candidate_cells(worker) == _legacy_candidates(
                    mixed_schema, mixed_answers, worker, cap=cap
                )

    def test_open_cell_pool_shrinks_to_zero(self, mixed_schema):
        answers = AnswerSet(mixed_schema)
        state = SessionState(mixed_schema, max_answers_per_cell=1)
        assert state.has_open_cells()
        for i in range(mixed_schema.num_rows):
            for j, column in enumerate(mixed_schema.columns):
                value = column.labels[0] if column.is_categorical else 1.0
                answers.add_answer("solo", i, j, value)
        state.sync(answers)
        assert not state.has_open_cells()
        assert state.open_cell_count() == 0
        assert state.candidate_cells("other") == []

    def test_rebuilds_for_a_different_answer_set(self, mixed_schema, mixed_answers):
        state = SessionState(mixed_schema)
        state.sync(mixed_answers)
        other = mixed_answers.copy()
        label = mixed_schema.columns[0].labels[0]
        other.add_answer("fresh", 0, 0, label)
        state.sync(other)
        assert np.array_equal(state.counts, other.answer_counts())

    def test_policy_candidate_cells_identical_to_legacy(
        self, mixed_schema, mixed_answers, fast_model
    ):
        engine = TCrowdAssigner(mixed_schema, model=fast_model, incremental=True)
        legacy = TCrowdAssigner(mixed_schema, model=fast_model, incremental=False)
        for worker in mixed_answers.workers:
            assert engine.candidate_cells(worker, mixed_answers) == (
                legacy.candidate_cells(worker, mixed_answers)
            )


class TestWarmStart:
    def _grow(self, dataset, extra=6, seed=3):
        rng = np.random.default_rng(seed)
        answers = dataset.answers.copy()
        worker = dataset.answers.workers[0]
        added = 0
        for i in range(dataset.schema.num_rows):
            for j in range(dataset.schema.num_columns):
                if added >= extra:
                    return answers
                if not answers.has_answered(worker, i, j):
                    value = dataset.oracle.answer(worker, i, j, rng)
                    answers.add_answer(worker, i, j, value)
                    added += 1
        return answers

    def test_warm_refit_matches_cold_fit_within_tolerance(self):
        """Warm and cold starts approach the same EM fixed point.

        The EM crawl is slow (difficulty parameters keep creeping), so the
        two trajectories only agree once both have run long enough; with 200
        iterations the qualities match to ~1e-3 and the posterior means to a
        few percent.
        """
        dataset = generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=4, seed=11,
        )
        model = TCrowdModel(max_iterations=200, m_step_iterations=25)
        previous = model.fit(dataset.schema, dataset.answers)
        grown = self._grow(dataset)
        cold = model.fit(dataset.schema, grown)
        warm = model.fit(dataset.schema, grown, init=previous)

        cold_q = cold.worker_qualities()
        warm_q = warm.worker_qualities()
        assert set(cold_q) == set(warm_q)
        for worker, quality in cold_q.items():
            assert warm_q[worker] == pytest.approx(quality, abs=0.01)
        for (i, j), posterior in cold.posteriors.items():
            other = warm.posteriors[(i, j)]
            if posterior.is_categorical:
                assert np.allclose(posterior.probs, other.probs, atol=0.05)
            else:
                assert other.mean == pytest.approx(posterior.mean, rel=0.05, abs=0.1)

    def test_warm_and_cold_agree_on_top_k_assignments(self):
        dataset = generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=4, seed=11,
        )
        model = TCrowdModel(max_iterations=40, m_step_iterations=25)
        previous = model.fit(dataset.schema, dataset.answers)
        grown = self._grow(dataset)
        cold = model.fit(dataset.schema, grown)
        warm = model.fit(dataset.schema, grown, init=previous)
        worker = dataset.answers.workers[1]
        cells = list(dataset.schema.cells())
        k = 5
        cold_gains = InformationGainCalculator(cold).gains_batch(worker, cells)
        warm_gains = InformationGainCalculator(warm).gains_batch(worker, cells)
        cold_top = {cells[i] for i in top_k_stable(cold_gains, k)}
        warm_top = {cells[i] for i in top_k_stable(warm_gains, k)}
        assert cold_top == warm_top

    def test_new_workers_start_at_median_phi(self):
        dataset = generate_synthetic(
            num_rows=8, num_columns=4, categorical_ratio=0.5,
            answers_per_task=3, seed=5,
        )
        model = TCrowdModel(max_iterations=5, m_step_iterations=10)
        previous = model.fit(dataset.schema, dataset.answers)
        grown = dataset.answers.copy()
        column = dataset.schema.columns[0]
        value = (
            column.labels[0] if column.is_categorical else 1.0
        )
        grown.add_answer("never-seen-before", 0, 0, value)
        result = model.fit(dataset.schema, grown, init=previous)
        assert result.has_worker("never-seen-before")
        assert np.isfinite(result.worker_variance("never-seen-before"))


class TestVectorizedSelect:
    def test_vectorized_select_matches_scalar_select(
        self, mixed_schema, mixed_answers
    ):
        def build(vectorized):
            return TCrowdAssigner(
                mixed_schema,
                model=TCrowdModel(max_iterations=8, m_step_iterations=12),
                use_structure=True,
                warm_start=False,
                vectorized=vectorized,
            )

        for worker in ("expert", "good", "brand-new"):
            fast = build(True).select(worker, mixed_answers, k=4)
            slow = build(False).select(worker, mixed_answers, k=4)
            assert fast.cells == slow.cells
            assert fast.gains == pytest.approx(slow.gains, rel=1e-9, abs=1e-12)

    def test_gains_batch_matches_scalar_gain(self, mixed_schema, mixed_answers):
        model = TCrowdModel(max_iterations=8, m_step_iterations=12)
        result = model.fit(mixed_schema, mixed_answers)
        cells = list(mixed_schema.cells())
        worker = mixed_answers.workers[0]
        for calculator in (
            InformationGainCalculator(result),
            StructureAwareGainCalculator(result, mixed_answers),
        ):
            batch = calculator.gains_batch(worker, cells)
            scalar = [calculator.gain(worker, r, c) for r, c in cells]
            assert batch == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    def test_top_k_stable_breaks_ties_by_index(self):
        gains = np.array([0.5, 1.0, 1.0, 0.25, 1.0])
        assert list(top_k_stable(gains, 2)) == [1, 2]
        assert list(top_k_stable(gains, 4)) == [1, 2, 4, 0]
        assert list(top_k_stable(gains, 10)) == [1, 2, 4, 0, 3]


class TestSeedPlumbing:
    def test_model_seed_flows_through_rng(self):
        model = TCrowdModel(seed=123)
        assert isinstance(model.rng, np.random.Generator)

    def test_assigner_shares_one_generator_with_calculators(
        self, mixed_schema, mixed_answers
    ):
        model = TCrowdModel(max_iterations=5, m_step_iterations=8, seed=42)
        assigner = TCrowdAssigner(
            mixed_schema, model=model, use_structure=False,
            continuous_samples=4, vectorized=False, warm_start=False,
        )
        # Monte-Carlo gains advance one shared stream: two selects over the
        # same answers must not replay identical samples.
        first = assigner.select("expert", mixed_answers, k=2)
        second = assigner.select("expert", mixed_answers, k=2)
        assert assigner._rng is model.rng
        assert first.cells == second.cells or first.gains != second.gains


class TestPosteriorProtocol:
    def test_both_families_satisfy_protocol(self, mixed_schema, mixed_answers):
        model = TCrowdModel(max_iterations=5, m_step_iterations=8)
        result = model.fit(mixed_schema, mixed_answers)
        for posterior in result.posteriors.values():
            assert isinstance(posterior, Posterior)
            assert np.isfinite(posterior.entropy())
            assert posterior.point_estimate() is not None


class TestSessionStateQueries:
    def test_answer_count_and_candidate_mask(self, mixed_schema, mixed_answers):
        state = SessionState(mixed_schema, max_answers_per_cell=4)
        state.sync(mixed_answers)
        counts = mixed_answers.answer_counts()
        assert state.answer_count(0, 0) == counts[0, 0]
        for worker in (mixed_answers.workers[0], "brand-new"):
            mask = state.candidate_mask(worker)
            assert mask.shape == counts.shape
            expected = {
                (i, j)
                for i in range(mixed_schema.num_rows)
                for j in range(mixed_schema.num_columns)
                if mask[i, j]
            }
            assert expected == set(state.candidate_cells(worker))
