"""Simple assignment heuristics: Random, Looping, Entropy (Section 6.4.2).

These are the heuristics of Figure 5 (all evaluated with T-Crowd's inference
in the paper's case study):

* **Random** — pick uniformly among the candidate cells;
* **Looping** — round-robin over the cells in row-major order;
* **Entropy** — pick the cell whose current truth posterior has the highest
  *raw* uniform entropy.  Because raw Shannon and differential entropies are
  not comparable, this heuristic is biased toward continuous cells — the
  behaviour the paper points out and that motivates delta entropy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.answers import AnswerSet
from repro.core.assignment import AssignmentPolicy, BatchAssignment, Cell, refit_model
from repro.core.inference import TCrowdModel
from repro.core.schema import TableSchema
from repro.utils.exceptions import AssignmentError
from repro.utils.rng import as_generator


class RandomAssigner(AssignmentPolicy):
    """Assign uniformly random candidate cells (CDAS-style random routing)."""

    def __init__(self, schema: TableSchema, seed=None,
                 max_answers_per_cell: Optional[int] = None) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        self._rng = as_generator(seed)

    @property
    def name(self) -> str:
        return "Random"

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        k = min(k, len(candidates))
        chosen = self._rng.choice(len(candidates), size=k, replace=False)
        cells = tuple(candidates[int(index)] for index in chosen)
        return BatchAssignment(worker, cells, tuple(0.0 for _ in cells))


class LoopingAssigner(AssignmentPolicy):
    """Assign cells in round-robin (row-major) order."""

    def __init__(self, schema: TableSchema,
                 max_answers_per_cell: Optional[int] = None) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        self._cursor = 0
        self._order: List[Cell] = [
            (i, j) for i in range(schema.num_rows) for j in range(schema.num_columns)
        ]

    @property
    def name(self) -> str:
        return "Looping"

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        candidates = set(self.candidate_cells(worker, answers))
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        cells: List[Cell] = []
        scanned = 0
        total = len(self._order)
        while len(cells) < k and scanned < total:
            cell = self._order[self._cursor]
            self._cursor = (self._cursor + 1) % total
            scanned += 1
            if cell in candidates and cell not in cells:
                cells.append(cell)
        if not cells:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        return BatchAssignment(worker, tuple(cells), tuple(0.0 for _ in cells))


class EntropyAssigner(AssignmentPolicy):
    """Assign the cells whose truth posterior currently has the highest entropy.

    Uses T-Crowd's truth inference to obtain the posteriors (as in the
    paper's Figure 5 study) but ranks by *raw* uniform entropy rather than by
    delta entropy, so it inherits the categorical-vs-continuous bias.
    """

    def __init__(self, schema: TableSchema, model: Optional[TCrowdModel] = None,
                 refit_every: int = 1,
                 max_answers_per_cell: Optional[int] = None,
                 warm_start: bool = True) -> None:
        super().__init__(schema, max_answers_per_cell=max_answers_per_cell)
        self.model = model or TCrowdModel()
        self.refit_every = max(int(refit_every), 1)
        self.warm_start = bool(warm_start)
        self._result = None
        self._answers_at_last_fit = -1

    @property
    def name(self) -> str:
        return "Entropy"

    def select(self, worker: str, answers: AnswerSet, k: int = 1) -> BatchAssignment:
        candidates = self.candidate_cells(worker, answers)
        if not candidates:
            raise AssignmentError(f"No candidate cells left for worker {worker!r}")
        result = self._ensure_result(answers)
        scored = [
            (result.posterior(row, col).entropy(), (row, col))
            for row, col in candidates
        ]
        scored.sort(key=lambda item: item[0], reverse=True)
        top = scored[:k]
        cells = tuple(cell for _score, cell in top)
        gains = tuple(score for score, _cell in top)
        return BatchAssignment(worker, cells, gains)

    def _ensure_result(self, answers: AnswerSet):
        if len(answers) == 0:
            raise AssignmentError(
                "Entropy assignment needs at least one collected answer"
            )
        stale = (
            self._result is None
            or len(answers) - self._answers_at_last_fit >= self.refit_every
        )
        if stale:
            self._result = refit_model(
                self.model, self.schema, answers,
                previous=self._result, warm_start=self.warm_start,
            )
            self._answers_at_last_fit = len(answers)
        return self._result
