"""Hot-path speed-pass tests: stacked scoring, scoring cache, Newton M-step.

The composed-path speed pass (stacked ``gains_batch`` over the shard
concatenation, the snapshot-keyed scoring-calculator cache, the ``k == 1``
merge shortcut and the Newton M-step) must be behaviour-neutral where the
equivalence bits say so and objective-equivalent where EM tolerance allows.
These tests pin each claim in isolation; the end-to-end bit-identity stays
with the golden-trace matrix and the benchmark gates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.assignment import (
    TCrowdAssigner,
    merge_top_k_stable,
    top_k_stable,
)
from repro.core.inference import TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.engine import ShardedAsyncPolicy, VirtualClock
from repro.engine.profiling import BUCKET_BOUNDS, HotPathProfile, stage
from repro.engine.sharding import ShardedAssignmentPolicy
from repro.utils.exceptions import InferenceError

FAST_MODEL = {"max_iterations": 3, "m_step_iterations": 6}


def _schema(num_rows: int = 8) -> TableSchema:
    columns = (
        Column.categorical("color", ("red", "green", "blue")),
        Column.categorical("size", ("small", "large")),
        Column.continuous("weight", (0.0, 100.0)),
        Column.continuous("price", (0.0, 1000.0)),
    )
    return TableSchema.build("item", columns, num_rows=num_rows)


def _seeded_answers(schema, answers_per_cell=2, seed=0) -> AnswerSet:
    rng = np.random.default_rng(seed)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        for col, column in enumerate(schema.columns):
            for index in range(answers_per_cell):
                worker = f"w{(row + index) % 5}"
                if column.is_categorical:
                    value = column.labels[int(rng.integers(column.num_labels))]
                else:
                    low, high = column.domain
                    value = float(rng.uniform(low, high))
                answers.add_answer(worker, row, col, value)
    return answers


def _assigner(schema, **kwargs) -> TCrowdAssigner:
    options = dict(refit_every=1, warm_start=True)
    options.update(kwargs)
    return TCrowdAssigner(schema, model=TCrowdModel(**FAST_MODEL), **options)


# -- stable top-K merge vs the monolithic selection ---------------------------


_gain_parts = st.lists(
    st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        max_size=8,
    ),
    min_size=1,
    max_size=5,
)


class TestMergeTopKStable:
    @given(parts=_gain_parts, k=st.sampled_from([1, 2, 4, 7]))
    @settings(deadline=None, max_examples=200)
    def test_merge_matches_monolithic_top_k(self, parts, k):
        """The heap merge (and its k==1 shortcut) equals top-K over concat."""
        arrays = [np.asarray(part, dtype=float) for part in parts]
        flat = (
            np.concatenate(arrays) if arrays else np.zeros(0, dtype=float)
        )
        merged = merge_top_k_stable(arrays, k)
        expected = top_k_stable(flat, k)[: len(merged)]
        assert merged.tolist() == expected.tolist()

    def test_k1_shortcut_prefers_earlier_index_on_ties(self):
        parts = [np.array([1.0, 5.0]), np.array([5.0, 2.0])]
        assert merge_top_k_stable(parts, 1).tolist() == [1]

    def test_k1_all_empty_parts(self):
        assert merge_top_k_stable([np.zeros(0), np.zeros(0)], 1).tolist() == []


# -- stacked gains_batch vs the per-shard scoring loop ------------------------


class TestStackedScoring:
    @given(k=st.sampled_from([1, 2, 4, 7]), num_shards=st.integers(1, 5))
    @settings(deadline=None, max_examples=12)
    def test_sequential_select_equals_per_shard_oracle(self, k, num_shards):
        """One stacked ``gains_batch`` + global top-K must reproduce the
        per-shard scoring loop + stable heap merge it replaced."""
        schema = _schema()
        answers = _seeded_answers(schema)
        policy = ShardedAssignmentPolicy(_assigner(schema), num_shards=num_shards)
        worker = "w0"
        state = policy.session_state(answers)
        shard_cells = [
            state.shard_candidate_cells(shard, worker)
            for shard in range(state.num_shards)
        ]
        calculator = policy.inner.prepare_scoring(answers)
        # The oracle: the pre-speed-pass path, one gains_batch per shard
        # followed by the stable heap merge over the per-shard arrays.
        shard_gains = [
            calculator.gains_batch(worker, cells)
            if cells
            else np.zeros(0, dtype=float)
            for cells in shard_cells
        ]
        order = merge_top_k_stable(shard_gains, k)
        offsets = np.cumsum([0] + [len(cells) for cells in shard_cells])
        owners = np.searchsorted(offsets, order, side="right") - 1
        oracle_cells = tuple(
            shard_cells[shard][index - offsets[shard]]
            for shard, index in zip(owners.tolist(), order.tolist())
        )
        oracle_gains = tuple(
            float(shard_gains[shard][index - offsets[shard]])
            for shard, index in zip(owners.tolist(), order.tolist())
        )
        result = policy.select(worker, answers, k=k)
        assert result.cells == oracle_cells
        assert result.gains == pytest.approx(oracle_gains)

    def test_threaded_select_matches_sequential(self):
        schema = _schema()
        answers = _seeded_answers(schema)
        sequential = ShardedAssignmentPolicy(_assigner(schema), num_shards=3)
        with ShardedAssignmentPolicy(
            _assigner(schema), num_shards=3, max_workers=3
        ) as threaded:
            for k in (1, 2, 5):
                a = sequential.select("w1", answers, k=k)
                b = threaded.select("w1", answers, k=k)
                assert a.cells == b.cells
                assert a.gains == pytest.approx(b.gains)


# -- snapshot-keyed scoring-calculator cache ----------------------------------


class TestScoringCache:
    def _policy(self, schema, **kwargs):
        return ShardedAsyncPolicy(
            _assigner(schema),
            num_shards=2,
            max_stale_answers=0,
            clock=VirtualClock(),
            **kwargs,
        )

    def test_repeat_select_hits_cache(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = self._policy(mixed_schema)
        try:
            first = policy.select("w0", answers, k=2)
            assert policy.scoring_cache_misses == 1
            second = policy.select("w0", answers, k=2)
            assert policy.scoring_cache_hits == 1
            assert first.cells == second.cells
        finally:
            policy.close()

    def test_new_answers_invalidate(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = self._policy(mixed_schema)
        try:
            policy.select("w0", answers, k=1)
            answers.add_answer("w9", 0, 0, "red")
            policy.observe(answers)
            policy.select("w0", answers, k=1)
            assert policy.scoring_cache_hits == 0
            assert policy.scoring_cache_misses == 2
        finally:
            policy.close()

    def test_epoch_change_invalidates_same_answer_count(self, mixed_schema):
        """A refit that publishes a new epoch must drop the cache even when
        the answer count is unchanged."""
        answers = _seeded_answers(mixed_schema)
        policy = self._policy(mixed_schema)
        try:
            policy.select("w0", answers, k=1)
            snapshot = policy.engine.snapshot
            # Re-publish the same result under a new epoch directly on the
            # engine (the policy's own restore_state clears the cache, which
            # would make this test vacuous): only the key's epoch changes.
            policy.engine.restore(snapshot.result, snapshot.answers_seen)
            assert policy.engine.snapshot.epoch > snapshot.epoch
            policy.select("w0", answers, k=1)
            assert policy.scoring_cache_hits == 0
            assert policy.scoring_cache_misses == 2
        finally:
            policy.close()

    def test_restore_clears_cache(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = self._policy(mixed_schema)
        try:
            policy.select("w0", answers, k=1)
            result, seen = policy.snapshot_state()
            policy.restore_state(result, seen)
            policy.select("w0", answers, k=1)
            assert policy.scoring_cache_misses == 2
        finally:
            policy.close()

    def test_cache_can_be_disabled(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = self._policy(mixed_schema, scoring_cache=False)
        try:
            policy.select("w0", answers, k=1)
            policy.select("w0", answers, k=1)
            assert policy.scoring_cache_hits == 0
            assert policy.scoring_cache_misses == 0
        finally:
            policy.close()


# -- Newton M-step ------------------------------------------------------------


class TestNewtonMStep:
    def test_rejects_unknown_m_step(self):
        with pytest.raises(InferenceError):
            TCrowdModel(m_step="sgd")

    def test_converges_to_same_objective(self, mixed_schema):
        """Both M-steps maximise the same Eq. 5; at convergence the EM
        objectives must agree within the relative stopping tolerance."""
        answers = _seeded_answers(mixed_schema, answers_per_cell=3)
        tol = 1e-4
        results = {}
        for variant in ("lbfgs", "newton"):
            model = TCrowdModel(
                max_iterations=40, m_step_iterations=30, m_step=variant
            )
            results[variant] = model.fit(mixed_schema, answers, tol=tol)
        obj_lbfgs = results["lbfgs"].objective_trace[-1]
        obj_newton = results["newton"].objective_trace[-1]
        assert obj_newton == pytest.approx(
            obj_lbfgs, rel=10 * tol, abs=10 * tol * max(1.0, abs(obj_lbfgs))
        )

    def test_newton_objective_is_monotone(self, mixed_schema):
        """Generalized EM: every Newton M-step must improve (or match) the
        objective — the L-BFGS fallback guarantees it."""
        answers = _seeded_answers(mixed_schema, answers_per_cell=3)
        model = TCrowdModel(max_iterations=15, m_step="newton")
        trace = model.fit(mixed_schema, answers).objective_trace
        diffs = np.diff(np.asarray(trace))
        assert np.all(diffs >= -1e-6 * np.maximum(1.0, np.abs(trace[:-1])))

    def test_newton_decodes_same_truths(self, mixed_schema):
        answers = _seeded_answers(mixed_schema, answers_per_cell=3)
        fits = {
            variant: TCrowdModel(
                max_iterations=40, m_step_iterations=30, m_step=variant
            ).fit(mixed_schema, answers, tol=1e-4)
            for variant in ("lbfgs", "newton")
        }
        matches = 0
        for row in range(mixed_schema.num_rows):
            for col, column in enumerate(mixed_schema.columns):
                a = fits["lbfgs"].estimate(row, col)
                b = fits["newton"].estimate(row, col)
                if column.is_categorical:
                    matches += a == b
                else:
                    matches += abs(float(a) - float(b)) <= max(
                        0.05 * abs(float(a)), 0.1
                    )
        assert matches / mixed_schema.num_cells >= 0.9

    def test_default_path_is_lbfgs(self):
        assert TCrowdModel().m_step == "lbfgs"


# -- HotPathProfile -----------------------------------------------------------


class TestHotPathProfile:
    def test_stage_contextmanager_records(self):
        profile = HotPathProfile()
        with profile.stage("gains_batch"):
            pass
        stats = profile.stats("gains_batch")
        assert stats.calls == 1
        assert stats.seconds >= 0.0

    def test_none_profile_stage_is_noop(self):
        with stage(None, "gains_batch"):
            pass  # must not raise

    def test_buckets_are_cumulative_in_render(self):
        profile = HotPathProfile()
        profile.record("em_refit", 0.0002)
        profile.record("em_refit", 0.02)
        profile.record("em_refit", 2.0)  # beyond the last bound -> +Inf only
        lines = profile.render_prometheus()
        inf_line = next(
            line for line in lines
            if 'stage="em_refit"' in line and 'le="+Inf"' in line
        )
        assert inf_line.endswith(" 3")
        count_line = next(
            line for line in lines
            if line.startswith("repro_hotpath_stage_seconds_count")
            and 'stage="em_refit"' in line
        )
        assert count_line.endswith(" 3")

    def test_to_dict_orders_canonical_stages_first(self):
        profile = HotPathProfile()
        profile.record("top_k_merge", 0.001)
        profile.record("custom_stage", 0.001)
        profile.record("snapshot_acquire", 0.001)
        names = list(profile.to_dict())
        assert names == ["snapshot_acquire", "top_k_merge", "custom_stage"]

    def test_bucket_bounds_are_increasing(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)

    def test_profile_wired_through_composed_policy(self, mixed_schema):
        answers = _seeded_answers(mixed_schema)
        policy = ShardedAsyncPolicy(
            _assigner(mixed_schema),
            num_shards=2,
            max_stale_answers=0,
            clock=VirtualClock(),
        )
        profile = HotPathProfile()
        policy.set_profile(profile)
        try:
            policy.select("w0", answers, k=2)
        finally:
            policy.close()
        snapshot = profile.to_dict()
        for name in ("snapshot_acquire", "calculator_build", "gains_batch",
                     "top_k_merge"):
            assert snapshot[name]["calls"] >= 1
