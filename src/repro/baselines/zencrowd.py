"""ZenCrowd baseline (Demartini et al., WWW 2012).

A single reliability parameter per worker (probability of answering a
categorical task correctly), estimated jointly over all categorical columns
by EM.  Structurally a simplification of Dawid & Skene (diagonal confusion
matrix shared across labels), which is how the paper describes it
("a variant of D&S").
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema
from repro.utils.numerics import normalize_log_probs, safe_log


class ZenCrowd(TruthInferenceMethod):
    """Single-reliability-per-worker EM over all categorical columns."""

    name = "ZenCrowd"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-4) -> None:
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def supports_continuous(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        cat_cols = set(schema.categorical_indices)
        observations = [a for a in answers if a.col in cat_cols]
        if not observations:
            return BaselineResult(schema, self.name, {})
        workers = sorted({a.worker for a in observations})
        reliability = {worker: 0.7 for worker in workers}

        cells = sorted({(a.row, a.col) for a in observations})
        by_cell: Dict[Tuple[int, int], list] = {cell: [] for cell in cells}
        for answer in observations:
            by_cell[(answer.row, answer.col)].append(answer)

        posteriors: Dict[Tuple[int, int], np.ndarray] = {}
        for _iteration in range(self.max_iterations):
            # E-step: per-cell label posteriors.
            for cell in cells:
                column = schema.columns[cell[1]]
                num_labels = column.num_labels
                log_post = np.zeros(num_labels)
                for answer in by_cell[cell]:
                    r = float(np.clip(reliability[answer.worker], 1e-6, 1 - 1e-6))
                    wrong = (1.0 - r) / max(num_labels - 1, 1)
                    contribution = np.full(num_labels, safe_log(wrong))
                    contribution[column.label_index(answer.value)] = np.log(r)
                    log_post += contribution
                posteriors[cell] = normalize_log_probs(log_post)
            # M-step: worker reliabilities.
            credit = {worker: 0.0 for worker in workers}
            counts = {worker: 0 for worker in workers}
            for cell in cells:
                column = schema.columns[cell[1]]
                post = posteriors[cell]
                for answer in by_cell[cell]:
                    credit[answer.worker] += float(post[column.label_index(answer.value)])
                    counts[answer.worker] += 1
            new_reliability = {
                worker: (credit[worker] + 1.0) / (counts[worker] + 2.0)
                for worker in workers
            }
            delta = max(
                abs(new_reliability[worker] - reliability[worker]) for worker in workers
            )
            reliability = new_reliability
            if delta < self.tolerance:
                break

        estimates = {
            cell: schema.columns[cell[1]].labels[int(np.argmax(post))]
            for cell, post in posteriors.items()
        }
        return BaselineResult(
            schema, self.name, estimates, worker_weights=dict(reliability)
        )
