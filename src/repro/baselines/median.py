"""Median baseline (continuous data only)."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines.base import BaselineResult, TruthInferenceMethod
from repro.core.answers import AnswerSet
from repro.core.schema import TableSchema


class MedianAggregator(TruthInferenceMethod):
    """Estimate each continuous cell by the median of its answers."""

    name = "Median"

    def supports_categorical(self) -> bool:
        return False

    def fit(self, schema: TableSchema, answers: AnswerSet) -> BaselineResult:
        estimates: Dict[Tuple[int, int], object] = {}
        for col in schema.continuous_indices:
            for row in range(schema.num_rows):
                cell_answers = answers.answers_for_cell(row, col)
                if not cell_answers:
                    continue
                values = [float(answer.value) for answer in cell_answers]
                estimates[(row, col)] = float(np.median(values))
        return BaselineResult(schema, self.name, estimates)
