"""Core T-Crowd algorithms: data model, truth inference and task assignment."""

from repro.core.answers import Answer, AnswerSet, IndexedAnswers
from repro.core.assignment import (
    AssignmentPolicy,
    BatchAssignment,
    TCrowdAssigner,
)
from repro.core.correlation import AttributeCorrelationModel
from repro.core.entropy import (
    delta_entropy_comparable,
    differential_entropy,
    shannon_entropy,
    uniform_entropy,
)
from repro.core.inference import InferenceResult, TCrowdModel
from repro.core.information_gain import InformationGainCalculator
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior, Posterior
from repro.core.restricted import TCrowdCategoricalOnly, TCrowdContinuousOnly
from repro.core.schema import AttributeType, Column, TableSchema
from repro.core.structure_gain import StructureAwareGainCalculator
from repro.core.worker_model import WorkerModel

__all__ = [
    "Answer",
    "AnswerSet",
    "AssignmentPolicy",
    "AttributeCorrelationModel",
    "AttributeType",
    "BatchAssignment",
    "CategoricalPosterior",
    "Column",
    "GaussianPosterior",
    "Posterior",
    "IndexedAnswers",
    "InferenceResult",
    "InformationGainCalculator",
    "StructureAwareGainCalculator",
    "TableSchema",
    "TCrowdAssigner",
    "TCrowdCategoricalOnly",
    "TCrowdContinuousOnly",
    "TCrowdModel",
    "WorkerModel",
    "delta_entropy_comparable",
    "differential_entropy",
    "shannon_entropy",
    "uniform_entropy",
]
