"""Workers, answers and answer containers (Section 3, Definition 2).

An :class:`Answer` is one worker's value for one cell.  :class:`AnswerSet`
stores the full collection ``A = {a^u_ij}`` with the per-cell / per-worker
indexes every inference method needs, and :class:`IndexedAnswers` is its
vectorised (numpy) view used by the EM algorithm and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.core.schema import TableSchema
from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class Answer:
    """A single answer ``a^u_ij`` submitted by worker ``worker`` for cell (row, col).

    ``value`` is a label (for categorical columns) or a number (for
    continuous columns).
    """

    worker: str
    row: int
    col: int
    value: object

    def cell(self) -> Tuple[int, int]:
        """Return the ``(row, col)`` address of the answered cell."""
        return (self.row, self.col)


class AnswerSet:
    """Mutable collection of worker answers for a given :class:`TableSchema`.

    The container validates every answer against the schema on insertion and
    maintains per-cell and per-worker indexes so that truth inference and
    task assignment stay linear in the number of answers.
    """

    def __init__(self, schema: TableSchema, answers: Iterable[Answer] = ()) -> None:
        self._schema = schema
        self._answers: List[Answer] = []
        self._by_cell: Dict[Tuple[int, int], List[int]] = {}
        self._by_worker: Dict[str, List[int]] = {}
        self._by_row: Dict[int, List[int]] = {}
        self._by_col: Dict[int, List[int]] = {}
        # Append-only parallel buffers kept in sync by add(); they let
        # IndexedAnswers (rebuilt on every online refit) vectorise without a
        # per-answer Python loop.
        self._worker_order: Dict[str, int] = {}
        self._buf_rows: List[int] = []
        self._buf_cols: List[int] = []
        self._buf_workers: List[int] = []
        self._buf_values: List[float] = []
        self._buf_labels: List[int] = []
        for answer in answers:
            self.add(answer)

    # -- basic container behaviour ----------------------------------------

    @property
    def schema(self) -> TableSchema:
        """Schema the answers refer to."""
        return self._schema

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self._answers)

    def __getitem__(self, index: int) -> Answer:
        return self._answers[index]

    # -- mutation ----------------------------------------------------------

    def add(self, answer: Answer) -> None:
        """Validate and append one answer."""
        self._schema.validate_cell(answer.row, answer.col)
        self._schema.validate_value(answer.col, answer.value)
        column = self._schema.columns[answer.col]
        if column.is_continuous:
            answer = Answer(answer.worker, answer.row, answer.col, float(answer.value))
        index = len(self._answers)
        self._answers.append(answer)
        self._by_cell.setdefault(answer.cell(), []).append(index)
        self._by_worker.setdefault(answer.worker, []).append(index)
        self._by_row.setdefault(answer.row, []).append(index)
        self._by_col.setdefault(answer.col, []).append(index)
        worker_index = self._worker_order.get(answer.worker)
        if worker_index is None:
            worker_index = len(self._worker_order)
            self._worker_order[answer.worker] = worker_index
        self._buf_rows.append(answer.row)
        self._buf_cols.append(answer.col)
        self._buf_workers.append(worker_index)
        if column.is_categorical:
            self._buf_values.append(float("nan"))
            self._buf_labels.append(column.label_index(answer.value))
        else:
            self._buf_values.append(float(answer.value))
            self._buf_labels.append(-1)

    def add_answer(self, worker: str, row: int, col: int, value) -> None:
        """Convenience wrapper constructing and adding an :class:`Answer`."""
        self.add(Answer(worker, row, col, value))

    def extend(self, answers: Iterable[Answer]) -> None:
        """Add every answer in ``answers``."""
        for answer in answers:
            self.add(answer)

    def copy(self) -> "AnswerSet":
        """Return a shallow copy (answers are immutable)."""
        return AnswerSet(self._schema, self._answers)

    # -- lookups -----------------------------------------------------------

    def answers_for_cell(self, row: int, col: int) -> List[Answer]:
        """All answers collected for cell ``(row, col)``."""
        return [self._answers[i] for i in self._by_cell.get((row, col), [])]

    def answers_by_worker(self, worker: str) -> List[Answer]:
        """All answers submitted by ``worker``."""
        return [self._answers[i] for i in self._by_worker.get(worker, [])]

    def answers_in_row(self, row: int) -> List[Answer]:
        """All answers for cells of row ``row``."""
        return [self._answers[i] for i in self._by_row.get(row, [])]

    def answers_in_column(self, col: int) -> List[Answer]:
        """All answers for cells of column ``col``."""
        return [self._answers[i] for i in self._by_col.get(col, [])]

    def worker_answers_in_row(self, worker: str, row: int) -> List[Answer]:
        """Answers by ``worker`` to cells of row ``row`` (used by Eq. 7)."""
        return [
            answer
            for answer in self.answers_by_worker(worker)
            if answer.row == row
        ]

    def has_answered(self, worker: str, row: int, col: int) -> bool:
        """True if ``worker`` already answered cell ``(row, col)``."""
        indexes = self._by_cell.get((row, col))
        if not indexes:
            return False
        return any(self._answers[i].worker == worker for i in indexes)

    def answer_count(self, row: int, col: int) -> int:
        """Number of answers collected for cell ``(row, col)`` (O(1))."""
        indexes = self._by_cell.get((row, col))
        return len(indexes) if indexes else 0

    def column_answer_count(self, col: int) -> int:
        """Number of answers collected for column ``col`` (O(1))."""
        indexes = self._by_col.get(col)
        return len(indexes) if indexes else 0

    @property
    def workers(self) -> List[str]:
        """Distinct worker identifiers, in first-seen order."""
        return list(self._by_worker.keys())

    @property
    def num_workers(self) -> int:
        """Number of distinct workers who contributed at least one answer."""
        return len(self._by_worker)

    def answer_counts(self) -> np.ndarray:
        """Return an ``(N, M)`` matrix of answers collected per cell."""
        counts = np.zeros(
            (self._schema.num_rows, self._schema.num_columns), dtype=int
        )
        for (row, col), indexes in self._by_cell.items():
            counts[row, col] = len(indexes)
        return counts

    def mean_answers_per_cell(self) -> float:
        """Average number of answers per cell (the x-axis of Figure 2)."""
        return len(self._answers) / self._schema.num_cells

    # -- projections -------------------------------------------------------

    def restricted_to_columns(self, columns: Iterable[int]) -> "AnswerSet":
        """Return a new answer set containing only answers to ``columns``.

        Used by the TC-onlyCate / TC-onlyCont variants and by baselines that
        handle a single datatype.
        """
        keep = set(columns)
        subset = AnswerSet(self._schema)
        for answer in self._answers:
            if answer.col in keep:
                subset.add(answer)
        return subset

    def indexed(self) -> "IndexedAnswers":
        """Return the vectorised view used by the numerical algorithms."""
        return IndexedAnswers(self)


class IndexedAnswers:
    """Vectorised, read-only view over an :class:`AnswerSet`.

    Exposes parallel numpy arrays over the answers plus grouping indexes.
    Categorical answers are encoded as label indices; continuous answers as
    floats (the two encodings live in separate arrays and each answer fills
    exactly one of them, the other holding a sentinel).
    """

    def __init__(self, answers: AnswerSet) -> None:
        if len(answers) == 0:
            raise DataError("Cannot index an empty answer set")
        schema = answers.schema
        self.schema = schema
        self.worker_ids: List[str] = answers.workers
        self.worker_index: Dict[str, int] = {
            worker: u for u, worker in enumerate(self.worker_ids)
        }
        self.rows = np.asarray(answers._buf_rows, dtype=np.int64)
        self.cols = np.asarray(answers._buf_cols, dtype=np.int64)
        self.workers = np.asarray(answers._buf_workers, dtype=np.int64)
        self.values = np.asarray(answers._buf_values, dtype=float)
        self.label_indices = np.asarray(answers._buf_labels, dtype=np.int64)
        column_is_categorical = np.array(
            [column.is_categorical for column in schema.columns], dtype=bool
        )
        self.is_categorical = column_is_categorical[self.cols]
        self.is_continuous = ~self.is_categorical
        self._cell_groups: Dict[Tuple[int, int], np.ndarray] = {}
        order = np.lexsort((self.cols, self.rows))
        boundaries = np.flatnonzero(
            (np.diff(self.rows[order]) != 0) | (np.diff(self.cols[order]) != 0)
        )
        for group in np.split(order, boundaries + 1):
            key = (int(self.rows[group[0]]), int(self.cols[group[0]]))
            self._cell_groups[key] = group

    @property
    def num_answers(self) -> int:
        """Total number of answers."""
        return self.rows.shape[0]

    @property
    def num_workers(self) -> int:
        """Number of distinct workers."""
        return len(self.worker_ids)

    def cell_indices(self, row: int, col: int) -> np.ndarray:
        """Indices (into the parallel arrays) of answers for cell (row, col)."""
        return self._cell_groups.get((row, col), np.empty(0, dtype=np.int64))

    def answered_cells(self) -> List[Tuple[int, int]]:
        """All cells that received at least one answer."""
        return list(self._cell_groups.keys())
