"""Smoke tests for every experiment harness (at reduced scale).

These tests check that each table/figure harness runs end-to-end and produces
a structurally valid report; the recorded full-scale results live in
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    run_figure2,
    run_figure3_worker_consistency,
    run_figure4_quality_calibration,
    run_figure5,
    run_figure6_attribute_correlation,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
    run_table7,
)
from repro.experiments.reporting import ExperimentReport

FAST_MODEL = {"max_iterations": 8, "m_step_iterations": 12}


@pytest.fixture(scope="module")
def table7_report():
    return run_table7(seed=3, trials=1, num_rows=30, model_kwargs=FAST_MODEL)


class TestTable7:
    def test_report_structure(self, table7_report):
        assert isinstance(table7_report, ExperimentReport)
        assert table7_report.headers[0] == "Method"
        assert len(table7_report.rows) == 11  # all compared methods

    def test_every_dataset_column_present(self, table7_report):
        joined = " ".join(table7_report.headers)
        for name in ("Celebrity", "Restaurant", "Emotion"):
            assert name in joined

    def test_tcrowd_row_fully_populated(self, table7_report):
        tcrowd = next(row for row in table7_report.rows if row[0] == "T-Crowd")
        assert all(value is not None for value in tcrowd[1:])

    def test_single_datatype_methods_have_gaps(self, table7_report):
        mv = next(row for row in table7_report.rows if row[0] == "Maj. Voting")
        assert any(value is None for value in mv[1:])

    def test_tcrowd_competitive_with_mv(self, table7_report):
        headers = table7_report.headers
        col = headers.index("Celebrity ErrorRate")
        tcrowd = next(row for row in table7_report.rows if row[0] == "T-Crowd")[col]
        mv = next(row for row in table7_report.rows if row[0] == "Maj. Voting")[col]
        assert tcrowd <= mv + 0.02

    def test_restricted_to_one_dataset(self):
        report = run_table7(dataset_names=["Emotion"], seed=3, trials=1, num_rows=25,
                            model_kwargs=FAST_MODEL)
        assert report.headers == ["Method", "Emotion MNAD"]


class TestFigure2And5:
    @pytest.mark.slow
    def test_figure2_structure(self):
        report = run_figure2(
            dataset_name="Restaurant", seed=3, num_rows=15, eval_every=1.0,
            model_kwargs=FAST_MODEL,
        )
        assert len(report.rows) == 5  # five compared systems
        assert any("T-Crowd" in name for name in report.series)
        for _name, points in report.series.items():
            xs = [x for x, _y in points]
            assert xs == sorted(xs)

    def test_figure2_unknown_dataset(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_figure2(dataset_name="Nope")

    @pytest.mark.slow
    def test_figure5_structure(self):
        report = run_figure5(seed=3, num_rows=15, eval_every=1.0, model_kwargs=FAST_MODEL)
        names = [row[0] for row in report.rows]
        assert "Structure-Aware Information Gain" in names
        assert "Random" in names
        assert len(report.rows) == 5


class TestCaseStudies:
    def test_figure3_heatmap_rows(self):
        report = run_figure3_worker_consistency(seed=3, num_rows=40, top_workers=10)
        assert len(report.rows) <= 10
        assert report.headers[0] == "Worker"
        # Every error statistic is a float or None.
        for row in report.rows:
            for value in row[1:]:
                assert value is None or isinstance(value, float)

    def test_figure4_calibration_positive(self):
        report = run_figure4_quality_calibration(seed=3, num_rows=60, model_kwargs=FAST_MODEL)
        correlations = {row[0]: row[2] for row in report.rows}
        assert correlations, "expected at least one datatype row"
        for value in correlations.values():
            assert value > 0.2

    def test_figure6_contingency_table(self):
        report = run_figure6_attribute_correlation(seed=3, num_rows=60, model_kwargs=FAST_MODEL)
        assert len(report.rows) == 2
        total = sum(v for row in report.rows for v in row[1:])
        assert total > 0


class TestSyntheticSweeps:
    def test_figure7_columns_sweep(self):
        report = run_figure7(column_counts=(4, 8), num_rows=15, trials=1, seed=3,
                             model_kwargs=FAST_MODEL)
        assert [row[0] for row in report.rows] == [4, 8]
        assert "T-Crowd error" in report.series

    def test_figure8_ratio_sweep_handles_extremes(self):
        report = run_figure8(ratios=(0.0, 1.0), num_rows=15, num_columns=6, trials=1,
                             seed=3, model_kwargs=FAST_MODEL)
        first, last = report.rows
        assert first[0] == 0.0 and last[0] == 1.0
        # Ratio 0 has no categorical metrics; ratio 1 has no continuous metrics.
        headers = report.headers
        assert first[headers.index("T-Crowd error")] is None
        assert last[headers.index("T-Crowd MNAD")] is None

    def test_figure9_difficulty_hurts_quality(self):
        report = run_figure9(difficulties=(0.5, 3.0), num_rows=20, num_columns=6,
                             trials=1, seed=3, model_kwargs=FAST_MODEL)
        headers = report.headers
        easy, hard = report.rows
        col = headers.index("T-Crowd error")
        assert easy[col] <= hard[col] + 1e-9


class TestNoiseAndEfficiency:
    def test_figure10_noise_increases_error(self):
        report = run_figure10(gammas=(0.1, 0.4), seed=3, trials=1, num_rows=25,
                              model_kwargs=FAST_MODEL)
        headers = report.headers
        col = headers.index("MV error")
        low, high = report.rows
        assert low[col] <= high[col] + 0.05

    def test_figure11_reports_positive_times(self):
        report = run_figure11_assignment_time(answers_per_task_levels=(2,), seed=3,
                                              num_rows=15, model_kwargs=FAST_MODEL)
        assert report.rows[0][2] > 0

    def test_figure12_convergence_monotone(self):
        report = run_figure12_convergence(seed=3, num_rows=30, max_iterations=10,
                                          model_kwargs=FAST_MODEL)
        values = [value for _iteration, value in report.series["objective"]]
        assert values[-1] >= values[0]

    def test_figure12_runtime_scaling(self):
        report = run_figure12_runtime(answer_counts=(300, 900), seed=3,
                                      model_kwargs=FAST_MODEL)
        answers = [row[0] for row in report.rows]
        seconds = [row[2] for row in report.rows]
        assert answers[1] > answers[0]
        assert all(value > 0 for value in seconds)
