"""Inherent information gain (Section 5.1, Eq. 6).

The gain of assigning cell ``c_ij`` to worker ``u`` is the expected reduction
in the cell's (uniform) entropy after one more answer by ``u``:

    IG(c_ij) = H(T_ij | A) - E_a [ H(T_ij | A + {a}) ]

For a categorical cell the expectation runs over the finite label set using
the worker's predictive answer distribution.  For a continuous cell the
Gaussian posterior's updated variance does not depend on the answer's value,
so the expected differential entropy has a closed form; a Monte-Carlo
estimator (the paper's ``s_cont`` sampling) is available for validation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.inference import InferenceResult
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator


class InformationGainCalculator:
    """Computes the inherent information gain of Eq. 6 for (worker, cell) pairs.

    Parameters
    ----------
    result:
        A fitted :class:`InferenceResult` providing posteriors, worker
        qualities and cell difficulties.
    continuous_samples:
        0 (default) uses the exact closed form for continuous cells; a
        positive value uses Monte-Carlo sampling over hypothetical answers
        with that many samples, as described in the paper.
    seed:
        Seed for the sampling estimator.
    """

    def __init__(
        self,
        result: InferenceResult,
        continuous_samples: int = 0,
        seed=None,
    ) -> None:
        if continuous_samples < 0:
            raise ConfigurationError(
                f"continuous_samples must be >= 0, got {continuous_samples}"
            )
        self.result = result
        self.continuous_samples = int(continuous_samples)
        self._rng = as_generator(seed)

    # -- public API -----------------------------------------------------------

    def gain(
        self,
        worker: str,
        row: int,
        col: int,
        quality_override: Optional[float] = None,
        variance_override: Optional[float] = None,
    ) -> float:
        """Information gain of assigning cell ``(row, col)`` to ``worker``.

        ``quality_override`` (categorical cells) and ``variance_override``
        (continuous cells, original scale) replace the worker's inherent
        quality; the structure-aware calculator uses them to inject the
        row-conditioned error model of Section 5.2.
        """
        posterior = self.result.posterior(row, col)
        if isinstance(posterior, CategoricalPosterior):
            quality = (
                quality_override
                if quality_override is not None
                else self.result.cell_quality(worker, row, col)
            )
            return self._categorical_gain(posterior, quality)
        if isinstance(posterior, GaussianPosterior):
            variance = (
                variance_override
                if variance_override is not None
                else self.result.answer_variance(worker, row, col)
            )
            return self._continuous_gain(posterior, variance)
        raise ConfigurationError(
            f"Unsupported posterior type {type(posterior).__name__}"
        )

    def gains_for_worker(self, worker: str, candidates) -> dict:
        """Information gain for every candidate cell ``(row, col)``."""
        return {cell: self.gain(worker, cell[0], cell[1]) for cell in candidates}

    # -- categorical ------------------------------------------------------------

    @staticmethod
    def _categorical_gain(posterior: CategoricalPosterior, quality: float) -> float:
        current_entropy = posterior.entropy()
        answer_probs = posterior.predictive_answer_probs(quality)
        expected_entropy = 0.0
        for label_index, answer_prob in enumerate(answer_probs):
            if answer_prob <= 0.0:
                continue
            updated = posterior.updated_with_answer(label_index, quality)
            expected_entropy += answer_prob * updated.entropy()
        return current_entropy - expected_entropy

    # -- continuous -------------------------------------------------------------

    def _continuous_gain(self, posterior: GaussianPosterior, answer_variance: float) -> float:
        answer_variance = max(float(answer_variance), 1e-12)
        if self.continuous_samples == 0:
            updated_variance = posterior.updated_variance(answer_variance)
            return 0.5 * float(np.log(posterior.variance / updated_variance))
        # Monte-Carlo estimator over hypothetical answers (paper's s_cont).
        predictive_std = float(np.sqrt(posterior.predictive_variance(answer_variance)))
        samples = self._rng.normal(posterior.mean, predictive_std, self.continuous_samples)
        current_entropy = posterior.entropy()
        expected_entropy = float(
            np.mean(
                [
                    posterior.updated_with_answer(sample, answer_variance).entropy()
                    for sample in samples
                ]
            )
        )
        return current_entropy - expected_entropy
