"""Command-line entry point: run any of the paper's experiments.

Installed as ``tcrowd-experiments`` (see ``pyproject.toml``).  Examples::

    tcrowd-experiments table7 --quick
    tcrowd-experiments figure2 --dataset Restaurant
    tcrowd-experiments all --quick --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    run_engine_speedup,
    run_figure2,
    run_figure3_worker_consistency,
    run_figure4_quality_calibration,
    run_figure5,
    run_figure6_attribute_correlation,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
    run_table7,
)


def _table7(args) -> List:
    if args.quick:
        return [run_table7(seed=args.seed, trials=1, num_rows=50)]
    return [run_table7(seed=args.seed, trials=args.trials)]


def _figure2(args) -> List:
    num_rows = 30 if args.quick else None
    return [run_figure2(dataset_name=args.dataset, seed=args.seed, num_rows=num_rows)]


def _figure5(args) -> List:
    num_rows = 30 if args.quick else 60
    return [run_figure5(seed=args.seed, num_rows=num_rows)]


def _case_studies(args) -> List:
    num_rows = 60 if args.quick else None
    return [
        run_figure3_worker_consistency(seed=args.seed, num_rows=num_rows),
        run_figure4_quality_calibration(seed=args.seed, num_rows=num_rows),
        run_figure6_attribute_correlation(seed=args.seed, num_rows=num_rows),
    ]


def _synthetic(args) -> List:
    if args.quick:
        return [
            run_figure7(column_counts=(5, 10, 20), trials=1, seed=args.seed),
            run_figure8(ratios=(0.2, 0.5, 0.8), trials=1, seed=args.seed),
            run_figure9(difficulties=(0.5, 1.5, 3.0), trials=1, seed=args.seed),
        ]
    return [
        run_figure7(trials=args.trials, seed=args.seed),
        run_figure8(trials=args.trials, seed=args.seed),
        run_figure9(trials=args.trials, seed=args.seed),
    ]


def _noise(args) -> List:
    trials = 1 if args.quick else args.trials
    num_rows = 40 if args.quick else 60
    return [run_figure10(seed=args.seed, trials=trials, num_rows=num_rows)]


def _efficiency(args) -> List:
    counts = (1_000, 3_000) if args.quick else (1_000, 3_000, 10_000, 30_000)
    num_rows = 40 if args.quick else 60
    return [
        run_figure11_assignment_time(seed=args.seed, num_rows=num_rows),
        run_figure12_convergence(seed=args.seed, num_rows=num_rows if args.quick else None),
        run_figure12_runtime(answer_counts=counts, seed=args.seed),
    ]


def _engine(args) -> List:
    num_rows = 20 if args.quick else 60
    target = 1.6 if args.quick else 2.0
    return [
        run_engine_speedup(
            seed=args.seed, num_rows=num_rows, target_answers_per_task=target
        )
    ]


#: experiment name -> callable(args) -> list of reports
EXPERIMENTS: Dict[str, Callable] = {
    "table7": _table7,
    "figure2": _figure2,
    "figure3": lambda args: [run_figure3_worker_consistency(seed=args.seed)],
    "figure4": lambda args: [run_figure4_quality_calibration(seed=args.seed)],
    "figure5": _figure5,
    "figure6": lambda args: [run_figure6_attribute_correlation(seed=args.seed)],
    "figure7": lambda args: _synthetic(args)[:1],
    "figure8": lambda args: _synthetic(args)[1:2],
    "figure9": lambda args: _synthetic(args)[2:3],
    "figure10": _noise,
    "figure11": lambda args: [run_figure11_assignment_time(seed=args.seed)],
    "figure12": lambda args: [
        run_figure12_convergence(seed=args.seed),
        run_figure12_runtime(seed=args.seed),
    ],
    "case-studies": _case_studies,
    "synthetic": _synthetic,
    "efficiency": _efficiency,
    "engine": _engine,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tcrowd-experiments",
        description="Reproduce the tables and figures of the T-Crowd paper",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every harness)",
    )
    parser.add_argument("--seed", type=int, default=7, help="base random seed")
    parser.add_argument(
        "--trials", type=int, default=3,
        help="number of repetitions for averaged experiments",
    )
    parser.add_argument(
        "--dataset", default="Celebrity",
        choices=["Celebrity", "Restaurant", "Emotion"],
        help="dataset for figure2",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced table sizes / trials for a fast smoke run",
    )
    parser.add_argument(
        "--output", default=None, help="write the report text to this file"
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]
    reports = []
    for name in names:
        reports.extend(EXPERIMENTS[name](args))
    text = "\n\n".join(report.to_text() for report in reports)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
