"""Worker arrival process.

On AMT, workers arrive in sessions: a worker picks up a HIT, usually
completes a few more, and leaves.  :class:`WorkerArrivalProcess` reproduces
this: workers are drawn from the pool proportionally to their activity, and
each arrival stays for a geometric number of consecutive HITs.
"""

from __future__ import annotations

from typing import Iterator, Optional


from repro.datasets.workers import WorkerPool
from repro.utils.rng import as_generator
from repro.utils.validation import require_in_range


class WorkerArrivalProcess:
    """Generates the sequence of workers requesting HITs."""

    def __init__(
        self,
        pool: WorkerPool,
        seed=None,
        session_continue_probability: float = 0.7,
    ) -> None:
        require_in_range(
            session_continue_probability, 0.0, 0.999, "session_continue_probability"
        )
        self.pool = pool
        self.session_continue_probability = float(session_continue_probability)
        self._rng = as_generator(seed)
        self._current: Optional[str] = None

    def next_worker(self) -> str:
        """Return the worker who requests the next HIT."""
        if (
            self._current is not None
            and self._rng.random() < self.session_continue_probability
        ):
            return self._current
        worker_ids = self.pool.worker_ids()
        index = self._rng.choice(len(worker_ids), p=self.pool.activities())
        self._current = worker_ids[int(index)]
        return self._current

    def stream(self, count: int) -> Iterator[str]:
        """Yield the next ``count`` arriving workers."""
        for _ in range(count):
            yield self.next_worker()
