"""One versioned, serializable configuration API for the whole system.

:class:`SessionSpec` is the single way to describe a serving session —
policy + model options, serving mode (sharded / async / composed),
durability, and simulation budget — consumed by every entry point:

* ``CrowdsourcingSession.from_spec(dataset, spec)`` (the platform
  simulator; legacy keyword arguments adapt via
  :meth:`SessionSpec.from_legacy_kwargs` with ``DeprecationWarning``);
* ``measure_engine_speedup(spec=...)`` and ``benchmarks/run_bench.py``;
* the HTTP service: ``POST /sessions`` takes a v1 spec body (the PR-4
  dialect upgrades via :func:`upgrade_legacy_config`), the canonical spec
  is pinned to durable ``session.json`` manifests and served back on
  ``GET /sessions/{id}/config``.

:mod:`repro.config.factory` turns specs into live policies (the shared
wrapper-selection table); ``python -m repro.config.validate`` checks spec
JSON files from the command line.
"""

from repro.config.spec import (
    ENVELOPE_KEYS,
    SPEC_VERSION,
    STRATEGY_NAMES,
    DurabilitySpec,
    ModelSpec,
    PolicySpec,
    ServingSpec,
    SessionSpec,
    SessionSpecBuilder,
    SimulationSpec,
    SpecValidationError,
    StrategySpec,
    split_envelope,
    upgrade_legacy_config,
)

__all__ = [
    "ENVELOPE_KEYS",
    "SPEC_VERSION",
    "STRATEGY_NAMES",
    "DurabilitySpec",
    "ModelSpec",
    "PolicySpec",
    "ServingSpec",
    "SessionSpec",
    "SessionSpecBuilder",
    "SimulationSpec",
    "SpecValidationError",
    "StrategySpec",
    "split_envelope",
    "upgrade_legacy_config",
]
