"""Run every experiment harness at recording scale and save the reports.

This is the script used to produce the numbers quoted in EXPERIMENTS.md.
Scales are chosen so the full run finishes in tens of minutes on a laptop:
truth-inference experiments use the paper-sized tables; the end-to-end
assignment experiments (which refit truth inference hundreds of times) use
reduced tables, which is recorded in each report's notes.

Usage::

    python scripts/run_all_experiments.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.experiments import (
    run_figure2,
    run_figure3_worker_consistency,
    run_figure4_quality_calibration,
    run_figure5,
    run_figure6_attribute_correlation,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
    run_table7,
)


def main() -> int:
    output_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    output_dir.mkdir(parents=True, exist_ok=True)

    jobs = [
        ("table7", lambda: run_table7(seed=7, trials=3)),
        ("figure2_celebrity", lambda: run_figure2("Celebrity", seed=7, num_rows=40)),
        ("figure2_restaurant", lambda: run_figure2("Restaurant", seed=7, num_rows=40)),
        ("figure2_emotion", lambda: run_figure2("Emotion", seed=7, num_rows=40)),
        ("figure3", lambda: run_figure3_worker_consistency(seed=11)),
        ("figure4", lambda: run_figure4_quality_calibration(seed=11)),
        ("figure5", lambda: run_figure5(seed=11, num_rows=40)),
        ("figure6", lambda: run_figure6_attribute_correlation(seed=11)),
        ("figure7", lambda: run_figure7(trials=2, num_rows=40)),
        ("figure8", lambda: run_figure8(trials=2, num_rows=40)),
        ("figure9", lambda: run_figure9(trials=2, num_rows=40)),
        ("figure10", lambda: run_figure10(trials=2, num_rows=60)),
        ("figure11", lambda: run_figure11_assignment_time(seed=7, num_rows=60)),
        ("figure12a", lambda: run_figure12_convergence(seed=7)),
        ("figure12b", lambda: run_figure12_runtime(seed=7)),
    ]
    for name, job in jobs:
        start = time.time()
        print(f"[{time.strftime('%H:%M:%S')}] running {name} ...", flush=True)
        report = job()
        elapsed = time.time() - start
        report.add_note(f"wall-clock time: {elapsed:.1f}s")
        path = output_dir / f"{name}.txt"
        path.write_text(report.to_text() + "\n", encoding="utf-8")
        print(f"    done in {elapsed:.1f}s -> {path}", flush=True)
    print("all experiments finished")
    return 0


if __name__ == "__main__":
    sys.exit(main())
