"""Effectiveness metrics used throughout the evaluation (Section 6.2)."""

from repro.metrics.effectiveness import (
    as_estimates,
    column_rmse,
    error_rate,
    mnad,
    pearson_correlation,
)

__all__ = [
    "as_estimates",
    "column_rmse",
    "error_rate",
    "mnad",
    "pearson_correlation",
]
