"""JSON import/export of schemas, datasets and inference-result summaries.

The JSON documents are self-describing (they embed the schema), so a dataset
exported on one machine can be re-loaded and analysed on another without any
other artefact.  Answer oracles and worker pools are *not* serialised — they
describe the simulation, not the collected data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.answers import Answer, AnswerSet
from repro.core.schema import AttributeType, Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.utils.exceptions import DataError

PathLike = Union[str, Path]

#: Format marker embedded in every document for forward compatibility.
FORMAT_VERSION = 1


# -- schema -------------------------------------------------------------------

def schema_to_dict(schema: TableSchema) -> Dict:
    """Serialise a schema to plain JSON-compatible data."""
    return {
        "format_version": FORMAT_VERSION,
        "entity_attribute": schema.entity_attribute,
        "num_rows": schema.num_rows,
        "columns": [
            {
                "name": column.name,
                "type": column.attribute_type.value,
                "labels": list(column.labels),
                "domain": list(column.domain),
            }
            for column in schema.columns
        ],
    }


def schema_from_dict(data: Dict) -> TableSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    try:
        columns = []
        for entry in data["columns"]:
            attribute_type = AttributeType(entry["type"])
            if attribute_type is AttributeType.CATEGORICAL:
                columns.append(Column.categorical(entry["name"], entry["labels"]))
            else:
                columns.append(Column.continuous(entry["name"], tuple(entry["domain"])))
        return TableSchema.build(
            data["entity_attribute"], columns, int(data["num_rows"])
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DataError(f"Malformed schema document: {exc}") from exc


def save_schema_json(schema: TableSchema, path: PathLike) -> None:
    """Write a schema to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schema_to_dict(schema), handle, indent=2)


def load_schema_json(path: PathLike) -> TableSchema:
    """Read a schema from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return schema_from_dict(json.load(handle))


# -- datasets -----------------------------------------------------------------

def dataset_to_dict(dataset: CrowdDataset) -> Dict:
    """Serialise a dataset (schema, ground truth, answers, metadata)."""
    schema = dataset.schema
    return {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "schema": schema_to_dict(schema),
        "ground_truth": [
            {"row": row, "column": schema.columns[col].name, "value": value}
            for (row, col), value in sorted(dataset.ground_truth.items())
        ],
        "answers": [
            {
                "worker": answer.worker,
                "row": answer.row,
                "column": schema.columns[answer.col].name,
                "value": answer.value,
            }
            for answer in dataset.answers
        ],
        "metadata": dict(dataset.metadata),
    }


def dataset_from_dict(data: Dict) -> CrowdDataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output.

    The answer oracle and worker pool are not part of the document, so the
    returned dataset supports truth inference and metric evaluation but not
    live assignment simulation.
    """
    try:
        schema = schema_from_dict(data["schema"])
        ground_truth = {
            (int(entry["row"]), schema.column_index(entry["column"])): entry["value"]
            for entry in data["ground_truth"]
        }
        answers = AnswerSet(schema)
        for entry in data["answers"]:
            answers.add(
                Answer(
                    worker=entry["worker"],
                    row=int(entry["row"]),
                    col=schema.column_index(entry["column"]),
                    value=entry["value"],
                )
            )
        return CrowdDataset(
            name=data.get("name", "imported"),
            schema=schema,
            ground_truth=ground_truth,
            answers=answers,
            metadata=dict(data.get("metadata", {})),
        )
    except (KeyError, TypeError) as exc:
        raise DataError(f"Malformed dataset document: {exc}") from exc


def save_dataset_json(dataset: CrowdDataset, path: PathLike) -> None:
    """Write a dataset to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dataset_to_dict(dataset), handle, indent=2)


def load_dataset_json(path: PathLike) -> CrowdDataset:
    """Read a dataset from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return dataset_from_dict(json.load(handle))


# -- inference results ----------------------------------------------------------

def result_to_dict(result) -> Dict:
    """Serialisable summary of an inference result.

    Works for :class:`~repro.core.inference.InferenceResult` and for the
    baseline results (anything exposing ``estimates()``); T-Crowd results
    additionally carry worker qualities and row/column difficulties.
    """
    schema = result.schema
    document: Dict = {
        "format_version": FORMAT_VERSION,
        "estimates": [
            {"row": row, "column": schema.columns[col].name, "value": value}
            for (row, col), value in sorted(result.estimates().items())
        ],
    }
    if hasattr(result, "worker_qualities"):
        document["worker_qualities"] = result.worker_qualities()
        document["row_difficulty"] = [float(x) for x in result.alpha]
        document["column_difficulty"] = {
            schema.columns[j].name: float(result.beta[j])
            for j in range(schema.num_columns)
        }
        document["iterations"] = result.n_iterations
        document["converged"] = result.converged
    return document
