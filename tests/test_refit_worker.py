"""Tests for the async refit engine (repro.engine.refit_worker) and the
objective-based EM early stopping it builds on (repro.core.inference)."""

import threading

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.datasets import load_celebrity
from repro.engine import (
    AsyncRefitEngine,
    AsyncRefitPolicy,
    ModelSnapshot,
    VirtualClock,
)
from repro.utils.exceptions import AssignmentError, ConfigurationError


# -- deterministic stand-ins ---------------------------------------------------


class StubResult:
    """Opaque inference result; the engine never looks inside it."""

    def __init__(self, tag):
        self.tag = tag


class StubModel:
    """Records every fit call; returns :class:`StubResult` tagged by order."""

    supports_warm_start = True
    supports_objective_tol = True

    def __init__(self, fail_at=None):
        self.calls = []
        self.fail_at = fail_at
        self.lock = threading.Lock()

    def fit(self, schema, answers, init=None, tol=None):
        with self.lock:
            order = len(self.calls)
            self.calls.append(
                {"n": len(answers), "init": init, "tol": tol, "order": order}
            )
            if self.fail_at is not None and order == self.fail_at:
                raise RuntimeError(f"stub fit #{order} failed")
            return StubResult(order)


@pytest.fixture()
def tiny_schema():
    columns = (
        Column.categorical("kind", ("a", "b")),
        Column.continuous("size", (0.0, 10.0)),
    )
    return TableSchema.build("row", columns, num_rows=3)


def _add_answers(answers, count, worker="w"):
    """Append ``count`` valid answers round-robin over the cells."""
    schema = answers.schema
    added = 0
    suffix = 0
    while added < count:
        for row in range(schema.num_rows):
            for col in range(schema.num_columns):
                if added >= count:
                    return
                column = schema.columns[col]
                value = column.labels[0] if column.is_categorical else 1.0
                answers.add_answer(f"{worker}{suffix}", row, col, value)
                added += 1
        suffix += 1


# -- ModelSnapshot -------------------------------------------------------------


class TestModelSnapshot:
    def test_staleness_counts_unseen_answers(self, tiny_schema):
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 4)
        snapshot = ModelSnapshot(epoch=0, result=StubResult(0), answers_seen=3)
        assert snapshot.staleness(answers) == 1

    def test_snapshot_is_immutable(self):
        snapshot = ModelSnapshot(epoch=1, result=StubResult(0), answers_seen=5)
        with pytest.raises(AttributeError):
            snapshot.epoch = 2


# -- VirtualClock --------------------------------------------------------------


class TestVirtualClock:
    def test_jobs_run_only_on_run_pending_in_order(self):
        clock = VirtualClock()
        ran = []
        clock.submit(lambda: ran.append("a"))
        clock.submit(lambda: ran.append("b"))
        assert ran == []
        assert clock.pending_jobs == 2
        assert clock.run_pending() == 2
        assert ran == ["a", "b"]
        assert clock.pending_jobs == 0
        assert clock.run_pending() == 0

    def test_drain_is_a_synchronous_alias(self):
        clock = VirtualClock()
        ran = []
        clock.submit(lambda: ran.append(1))
        assert clock.drain(timeout=0.0) is True
        assert ran == [1]

    def test_closed_clock_rejects_submissions(self):
        clock = VirtualClock()
        clock.submit(lambda: None)
        clock.close()
        assert clock.pending_jobs == 0  # close drops queued jobs
        with pytest.raises(ConfigurationError):
            clock.submit(lambda: None)


# -- AsyncRefitEngine scheduling ----------------------------------------------


class TestAsyncRefitEngine:
    def _engine(self, tiny_schema, model=None, **kwargs):
        kwargs.setdefault("clock", VirtualClock())
        return AsyncRefitEngine(model or StubModel(), tiny_schema, **kwargs)

    def test_parameter_validation(self, tiny_schema):
        with pytest.raises(ConfigurationError):
            AsyncRefitEngine(StubModel(), tiny_schema, refit_every=0)
        with pytest.raises(ConfigurationError):
            AsyncRefitEngine(StubModel(), tiny_schema, max_stale_answers=-1)

    def test_first_result_blocks_and_publishes_epoch_zero(self, tiny_schema):
        model = StubModel()
        engine = self._engine(tiny_schema, model, max_stale_answers=5)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 3)
        assert engine.snapshot is None
        assert engine.epoch == -1
        assert engine.staleness(answers) == 3
        result = engine.result_for(answers)
        assert isinstance(result, StubResult)
        assert engine.epoch == 0
        assert engine.blocking_refits == 1
        assert engine.snapshot.answers_seen == 3
        # The cold fit never receives the warm-start tolerance.
        assert model.calls[0]["init"] is None
        assert model.calls[0]["tol"] is None

    def test_bounded_staleness_serves_stale_then_blocks(self, tiny_schema):
        engine = self._engine(tiny_schema, max_stale_answers=2)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        first = engine.result_for(answers)
        # Two more answers: staleness 2 <= bound, snapshot served lock-free.
        _add_answers(answers, 2, worker="x")
        assert engine.result_for(answers) is first
        assert engine.blocking_refits == 1
        # One more: staleness 3 > bound, the select path must catch up.
        _add_answers(answers, 1, worker="y")
        second = engine.result_for(answers)
        assert second is not first
        assert engine.blocking_refits == 2
        assert engine.snapshot.epoch == 1
        assert engine.snapshot.answers_seen == 5

    def test_unbounded_staleness_never_blocks_again(self, tiny_schema):
        engine = self._engine(tiny_schema, max_stale_answers=None)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 1)
        first = engine.result_for(answers)
        _add_answers(answers, 8, worker="x")
        assert engine.result_for(answers) is first
        assert engine.blocking_refits == 1

    def test_max_stale_zero_disables_background_refits(self, tiny_schema):
        clock = VirtualClock()
        engine = self._engine(tiny_schema, max_stale_answers=0, clock=clock)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.notify(answers)
        assert clock.pending_jobs == 0
        engine.result_for(answers)
        _add_answers(answers, 1, worker="x")
        engine.notify(answers)
        assert clock.pending_jobs == 0
        engine.result_for(answers)
        assert engine.blocking_refits == 2
        assert engine.background_refits == 0

    def test_notify_coalesces_requests_to_newest_count(self, tiny_schema):
        model = StubModel()
        clock = VirtualClock()
        engine = self._engine(
            tiny_schema, model, max_stale_answers=100, clock=clock
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.notify(answers)
        _add_answers(answers, 3, worker="x")
        engine.notify(answers)
        assert clock.pending_jobs == 1  # second request coalesced
        assert clock.run_pending() == 1
        assert engine.background_refits == 1
        assert engine.snapshot.answers_seen == 5  # newest count won
        assert model.calls[-1]["n"] == 5

    def test_notify_skips_when_snapshot_fresh_enough(self, tiny_schema):
        clock = VirtualClock()
        engine = self._engine(
            tiny_schema, refit_every=3, max_stale_answers=100, clock=clock
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.refit_now(answers)
        _add_answers(answers, 2, worker="x")
        engine.notify(answers)  # staleness 2 < refit_every 3
        assert clock.pending_jobs == 0
        _add_answers(answers, 1, worker="y")
        engine.notify(answers)  # staleness 3 -> request
        assert clock.pending_jobs == 1

    def test_background_fit_skipped_if_blocking_refit_overtook(self, tiny_schema):
        clock = VirtualClock()
        engine = self._engine(tiny_schema, max_stale_answers=100, clock=clock)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.notify(answers)
        assert clock.pending_jobs == 1
        engine.refit_now(answers)  # blocking refit lands first
        clock.run_pending()
        assert engine.background_refits == 0  # stale request dropped
        assert engine.blocking_refits == 1
        assert engine.epoch == 0

    def test_refit_now_returns_existing_snapshot_when_caught_up(self, tiny_schema):
        engine = self._engine(tiny_schema, max_stale_answers=100)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 3)
        first = engine.refit_now(answers)
        assert engine.refit_now(answers) is first
        assert engine.blocking_refits == 1

    def test_warm_chain_and_tolerance_plumbing(self, tiny_schema):
        model = StubModel()
        clock = VirtualClock()
        engine = AsyncRefitEngine(
            model, tiny_schema, max_stale_answers=100, tol=1e-3, clock=clock
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.refit_now(answers)
        _add_answers(answers, 2, worker="x")
        engine.notify(answers)
        clock.run_pending()
        cold, warm = model.calls
        assert cold["init"] is None and cold["tol"] is None
        assert isinstance(warm["init"], StubResult)
        assert warm["init"].tag == cold["order"]
        assert warm["tol"] == 1e-3

    def test_cold_starts_never_get_tolerance_when_warm_start_off(self, tiny_schema):
        model = StubModel()
        engine = AsyncRefitEngine(
            model, tiny_schema, warm_start=False, tol=1e-3,
            max_stale_answers=100, clock=VirtualClock(),
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.refit_now(answers)
        _add_answers(answers, 2, worker="x")
        engine.refit_now(answers)
        assert all(call["init"] is None for call in model.calls)
        assert all(call["tol"] is None for call in model.calls)

    def test_background_error_surfaces_on_next_serving_call(self, tiny_schema):
        model = StubModel(fail_at=1)
        clock = VirtualClock()
        engine = self._engine(tiny_schema, model, max_stale_answers=100, clock=clock)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.result_for(answers)
        _add_answers(answers, 2, worker="x")
        engine.notify(answers)
        clock.run_pending()  # the background fit raises, error is stored
        with pytest.raises(RuntimeError, match="stub fit #1 failed"):
            engine.result_for(answers)
        # The error is raised once, then cleared.
        assert engine.result_for(answers) is not None

    def test_epochs_increase_monotonically(self, tiny_schema):
        clock = VirtualClock()
        engine = self._engine(tiny_schema, max_stale_answers=1, clock=clock)
        answers = AnswerSet(tiny_schema)
        epochs = []
        for batch in range(3):
            _add_answers(answers, 2, worker=f"b{batch}")
            engine.result_for(answers)
            engine.notify(answers)
            clock.run_pending()
            epochs.append(engine.epoch)
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    def test_threaded_worker_drain_and_close(self, tiny_schema):
        model = StubModel()
        engine = AsyncRefitEngine(model, tiny_schema, max_stale_answers=100)
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.result_for(answers)
        _add_answers(answers, 2, worker="x")
        engine.notify(answers)
        assert engine.drain(timeout=30.0)
        assert engine.snapshot.answers_seen == 4
        assert engine.background_refits == 1
        engine.close()
        engine.close()  # idempotent
        # notify after close is a silent no-op, not a crash.
        _add_answers(answers, 1, worker="y")
        engine.notify(answers)

    def test_context_manager_closes_owned_worker(self, tiny_schema):
        with AsyncRefitEngine(StubModel(), tiny_schema, max_stale_answers=5) as engine:
            answers = AnswerSet(tiny_schema)
            _add_answers(answers, 2)
            engine.result_for(answers)
        assert engine.epoch == 0


# -- AsyncRefitPolicy ----------------------------------------------------------


@pytest.fixture(scope="module")
def celebrity():
    return load_celebrity(seed=7, num_rows=10)


def _seeded_answers(dataset, seed=7):
    schema = dataset.schema
    worker_ids = dataset.worker_pool.worker_ids()
    rng = np.random.default_rng(seed)
    answers = AnswerSet(schema)
    for row in range(schema.num_rows):
        worker = worker_ids[int(rng.integers(len(worker_ids)))]
        for col in range(schema.num_columns):
            answers.add_answer(
                worker, row, col, dataset.oracle.answer(worker, row, col, rng)
            )
    return answers


class TestAsyncRefitPolicy:
    def _inner(self, schema, **kwargs):
        kwargs.setdefault("model", TCrowdModel(max_iterations=4, m_step_iterations=8))
        return TCrowdAssigner(schema, **kwargs)

    def test_rejects_monte_carlo_gain_path(self, celebrity):
        inner = self._inner(celebrity.schema, continuous_samples=4)
        with pytest.raises(ConfigurationError):
            AsyncRefitPolicy(inner)

    def test_select_validates_inputs(self, celebrity):
        policy = AsyncRefitPolicy(
            self._inner(celebrity.schema), clock=VirtualClock()
        )
        answers = _seeded_answers(celebrity)
        with pytest.raises(AssignmentError):
            policy.select("w", answers, k=0)
        with pytest.raises(AssignmentError):
            policy.select("w", AnswerSet(celebrity.schema), k=1)

    def test_select_matches_synchronous_assigner(self, celebrity):
        answers = _seeded_answers(celebrity)
        worker = celebrity.worker_pool.worker_ids()[1]
        sync = self._inner(celebrity.schema)
        with AsyncRefitPolicy(
            self._inner(celebrity.schema), max_stale_answers=0,
            clock=VirtualClock(),
        ) as policy:
            fast = policy.select(worker, answers, k=4)
            slow = sync.select(worker, answers, k=4)
            assert fast.cells == slow.cells
            assert fast.gains == pytest.approx(slow.gains, rel=1e-12, abs=1e-15)
            assert policy.last_result is not None
            assert policy.name.endswith("[async refit]")

    def test_observe_schedules_and_final_result_catches_up(self, celebrity):
        clock = VirtualClock()
        answers = _seeded_answers(celebrity)
        worker = celebrity.worker_pool.worker_ids()[2]
        with AsyncRefitPolicy(
            self._inner(celebrity.schema), max_stale_answers=10 ** 6, clock=clock,
        ) as policy:
            assert policy.last_result is None
            assignment = policy.select(worker, answers, k=2)
            rng = np.random.default_rng(0)
            for row, col in assignment.cells:
                answers.add_answer(
                    worker, row, col, celebrity.oracle.answer(worker, row, col, rng)
                )
            policy.observe(answers)
            assert clock.pending_jobs == 1
            final = policy.final_result(answers)
            assert policy.engine.snapshot.answers_seen == len(answers)
            assert final.estimate(0, 0) is not None

    def test_exhausted_pool_raises_assignment_error(self, celebrity):
        answers = _seeded_answers(celebrity)
        inner = self._inner(celebrity.schema, max_answers_per_cell=1)
        with AsyncRefitPolicy(inner, clock=VirtualClock()) as policy:
            worker = celebrity.worker_pool.worker_ids()[3]
            with pytest.raises(AssignmentError):
                policy.select(worker, answers, k=1)


# -- objective-based EM early stopping ----------------------------------------


class TestObjectiveEarlyStopping:
    def test_fit_validates_tol_and_max_iter(self, celebrity):
        model = TCrowdModel(max_iterations=3, m_step_iterations=6)
        answers = _seeded_answers(celebrity)
        with pytest.raises(ConfigurationError):
            model.fit(celebrity.schema, answers, tol=-1.0)
        with pytest.raises(ConfigurationError):
            model.fit(celebrity.schema, answers, max_iter=0)

    def test_max_iter_overrides_budget_for_one_call(self, celebrity):
        model = TCrowdModel(max_iterations=6, m_step_iterations=6)
        answers = _seeded_answers(celebrity)
        result = model.fit(celebrity.schema, answers, max_iter=2)
        assert result.n_iterations == 2
        assert result.iterations_run == 2
        assert result.stopped_by == "max_iterations"
        assert model.max_iterations == 6  # untouched

    def test_warm_refit_with_tol_stops_early_with_unchanged_estimates(self):
        """The acceptance property: a warm-started refit with ``tol`` stops
        in under half the fixed iteration budget and decodes to the same
        truth estimates as the full-budget warm refit."""
        dataset = load_celebrity(seed=7, num_rows=15)
        model = TCrowdModel(max_iterations=10, m_step_iterations=15)
        cold = model.fit(dataset.schema, dataset.answers)
        assert cold.stopped_by == "max_iterations"  # cold fit: full budget

        rng = np.random.default_rng(3)
        grown = dataset.answers.copy()
        worker = dataset.answers.workers[0]
        added = 0
        for row in range(dataset.schema.num_rows):
            for col in range(dataset.schema.num_columns):
                if added >= 6:
                    break
                if not grown.has_answered(worker, row, col):
                    value = dataset.oracle.answer(worker, row, col, rng)
                    grown.add_answer(worker, row, col, value)
                    added += 1

        full = model.fit(dataset.schema, grown, init=cold)
        early = model.fit(dataset.schema, grown, init=cold, tol=1e-3)

        assert early.stopped_by == "objective"
        assert early.converged
        assert early.n_iterations < 0.5 * model.max_iterations
        assert full.n_iterations == model.max_iterations

        for row in range(dataset.schema.num_rows):
            for col in range(dataset.schema.num_columns):
                a = full.estimate(row, col)
                b = early.estimate(row, col)
                if dataset.schema.columns[col].is_categorical:
                    assert a == b, (row, col)
                else:
                    assert float(b) == pytest.approx(
                        float(a), rel=0.05, abs=0.1
                    ), (row, col)
        for worker_id, quality in full.worker_qualities().items():
            assert early.worker_quality(worker_id) == pytest.approx(
                quality, abs=0.02
            )

    def test_tol_does_not_fire_while_objective_still_climbs(self):
        """On a small set whose EM improvements stay above the relative
        threshold, the criterion must not trigger."""
        from repro.datasets import generate_synthetic

        dataset = generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=4, seed=11,
        )
        model = TCrowdModel(max_iterations=10, m_step_iterations=15)
        cold = model.fit(dataset.schema, dataset.answers)
        rng = np.random.default_rng(3)
        grown = dataset.answers.copy()
        worker = dataset.answers.workers[0]
        added = 0
        for row in range(dataset.schema.num_rows):
            for col in range(dataset.schema.num_columns):
                if added >= 6:
                    break
                if not grown.has_answered(worker, row, col):
                    grown.add_answer(
                        worker, row, col,
                        dataset.oracle.answer(worker, row, col, rng),
                    )
                    added += 1
        result = model.fit(dataset.schema, grown, init=cold, tol=1e-3)
        # Every recorded improvement exceeds the relative threshold, so the
        # fit must have used its whole budget.
        deltas = np.abs(np.diff(result.objective_trace))
        scale = max(1.0, abs(result.objective_trace[-1]))
        assert np.all(deltas > 1e-3 * scale)
        assert result.stopped_by == "max_iterations"
        assert result.n_iterations == model.max_iterations


class TestWorkerThreadEdgeCases:
    def test_submit_after_close_raises(self):
        from repro.engine.refit_worker import _RefitWorker

        worker = _RefitWorker()
        worker.close()
        with pytest.raises(ConfigurationError):
            worker.submit(lambda: None)

    def test_drain_times_out_on_a_stuck_job(self):
        from repro.engine.refit_worker import _RefitWorker

        release = threading.Event()
        worker = _RefitWorker()
        worker.submit(release.wait)
        assert worker.drain(timeout=0.05) is False
        release.set()
        assert worker.drain(timeout=30.0) is True
        worker.close()

    def test_staleness_with_published_snapshot(self, tiny_schema):
        engine = AsyncRefitEngine(
            StubModel(), tiny_schema, max_stale_answers=100, clock=VirtualClock()
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        engine.refit_now(answers)
        assert engine.staleness(answers) == 0
        _add_answers(answers, 3, worker="x")
        assert engine.staleness(answers) == 3

    def test_run_pending_without_request_is_a_noop(self, tiny_schema):
        engine = AsyncRefitEngine(
            StubModel(), tiny_schema, max_stale_answers=100, clock=VirtualClock()
        )
        engine._run_pending()  # no pending request: nothing published
        assert engine.epoch == -1


class TestCadenceEquivalence:
    def test_strict_mode_honours_refit_every_cadence(self, tiny_schema):
        """At max_stale_answers=0 the blocking threshold follows the refit
        cadence: the synchronous assigner itself serves a model up to
        refit_every-1 answers old between refits."""
        model = StubModel()
        engine = AsyncRefitEngine(
            model, tiny_schema, refit_every=3, max_stale_answers=0,
            clock=VirtualClock(),
        )
        answers = AnswerSet(tiny_schema)
        _add_answers(answers, 2)
        first = engine.result_for(answers)  # cold fit
        _add_answers(answers, 2, worker="x")
        # staleness 2 < refit_every 3: the synchronous path would not have
        # refitted either, so the stale model is served.
        assert engine.result_for(answers) is first
        _add_answers(answers, 1, worker="y")
        # staleness 3 crosses the cadence: blocking catch-up.
        assert engine.result_for(answers) is not first
        assert engine.blocking_refits == 2
        assert engine.background_refits == 0
