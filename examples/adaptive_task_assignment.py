"""End-to-end adaptive crowdsourcing session (paper Sections 5 and 6.3).

Simulates a live crowdsourcing run on the (reduced) Restaurant dataset and
compares three ways of routing tasks to incoming workers:

* T-Crowd's structure-aware information gain,
* T-Crowd's inherent information gain (no attribute correlations),
* random assignment,

all evaluated with T-Crowd truth inference, printing Error Rate and MNAD as
the budget (answers per task) grows.

Run with::

    python examples/adaptive_task_assignment.py [--rows 30] [--budget 4]
"""

import argparse

from repro import TCrowdAssigner, TCrowdModel
from repro.baselines.assignment_simple import RandomAssigner
from repro.datasets import load_restaurant
from repro.experiments.reporting import format_table
from repro.platform import CrowdsourcingSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=30)
    parser.add_argument("--budget", type=float, default=4.0,
                        help="target answers per task")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    dataset = load_restaurant(seed=args.seed, num_rows=args.rows)
    print("Dataset:", dataset.summary())
    model = TCrowdModel(max_iterations=15, m_step_iterations=20)
    refit = dataset.schema.num_columns

    policies = [
        ("Structure-aware IG", TCrowdAssigner(
            dataset.schema, model=model, use_structure=True, refit_every=refit)),
        ("Inherent IG", TCrowdAssigner(
            dataset.schema, model=model, use_structure=False, refit_every=refit)),
        ("Random", RandomAssigner(dataset.schema, seed=args.seed + 1)),
    ]

    traces = {}
    for name, policy in policies:
        session = CrowdsourcingSession(
            dataset,
            policy,
            model,
            target_answers_per_task=args.budget,
            initial_answers_per_task=1,
            eval_every_answers_per_task=0.5,
            seed=args.seed + 100,
        )
        print(f"\nRunning session with {name} assignment ...")
        traces[name] = session.run()

    print("\nError Rate / MNAD as the budget grows:")
    rows = []
    for name, trace in traces.items():
        for record in trace.records:
            rows.append([
                name,
                round(record.answers_per_task, 2),
                record.error_rate,
                record.mnad,
            ])
    print(format_table(["Policy", "answers/task", "Error Rate", "MNAD"], rows))

    print("\nBudget needed to reach Error Rate <= 0.25:")
    for name, trace in traces.items():
        reached = trace.answers_to_reach("error_rate", 0.25)
        print(f"  {name}: {reached if reached is not None else 'not reached'}")


if __name__ == "__main__":
    main()
