"""Tests for the sharded session state and the partitioned top-K policy.

The contract under test: sharding is a pure storage/scoring refactor.  For
any shard count the partitioned engine must replay the monolithic engine's
assignment sequence bit for bit — same cells, same gains, same tie-breaks —
and the per-shard indexes must agree with the monolithic ones at every step.
"""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.assignment import (
    TCrowdAssigner,
    merge_top_k_stable,
    top_k_stable,
)
from repro.core.inference import TCrowdModel
from repro.datasets import generate_synthetic
from repro.engine import (
    SessionState,
    ShardedAssignmentPolicy,
    ShardedSessionState,
)
from repro.platform import CrowdsourcingSession
from repro.utils.exceptions import AssignmentError, ConfigurationError


def _fast_model():
    return TCrowdModel(max_iterations=6, m_step_iterations=10)


def _random_answers(schema, steps=80, seed=2, workers=6):
    rng = np.random.default_rng(seed)
    answers = AnswerSet(schema)
    ids = [f"w{i}" for i in range(workers)]
    for _ in range(steps):
        worker = ids[int(rng.integers(len(ids)))]
        row = int(rng.integers(schema.num_rows))
        col = int(rng.integers(schema.num_columns))
        column = schema.columns[col]
        value = (
            column.labels[int(rng.integers(column.num_labels))]
            if column.is_categorical
            else float(rng.normal())
        )
        answers.add_answer(worker, row, col, value)
    return answers


class TestPartition:
    def test_contiguous_cover_with_uneven_rows(self, mixed_schema):
        # 8 rows: 1/2/3/5/7 shards all cover [0, 8) contiguously.
        for num_shards in (1, 2, 3, 5, 7):
            state = ShardedSessionState(mixed_schema, num_shards=num_shards)
            bounds = [state.shard_bounds(s) for s in range(state.num_shards)]
            assert bounds[0][0] == 0
            assert bounds[-1][1] == mixed_schema.num_rows
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1
            for row in range(mixed_schema.num_rows):
                shard = state.shard_of_row(row)
                start, stop = state.shard_bounds(shard)
                assert start <= row < stop

    def test_more_shards_than_rows_is_clipped(self, mixed_schema):
        state = ShardedSessionState(mixed_schema, num_shards=100)
        assert state.num_shards == mixed_schema.num_rows

    def test_zero_shards_rejected(self, mixed_schema):
        with pytest.raises(ConfigurationError):
            ShardedSessionState(mixed_schema, num_shards=0)


class TestShardedSessionState:
    def test_matches_monolith_under_interleaved_syncs(self, mixed_schema):
        answers = _random_answers(mixed_schema, steps=90)
        for num_shards, cap in ((2, None), (3, 3), (4, 2)):
            mono = SessionState(mixed_schema, max_answers_per_cell=cap)
            sharded = ShardedSessionState(
                mixed_schema, num_shards=num_shards, max_answers_per_cell=cap
            )
            partial = AnswerSet(mixed_schema)
            for index, answer in enumerate(answers):
                partial.add(answer)
                if index % 7 == 0 or index == len(answers) - 1:
                    mono.sync(partial)
                    sharded.sync(partial)
                    assert np.array_equal(mono.counts, sharded.counts)
                    assert mono.open_cell_count() == sharded.open_cell_count()
                    per_shard = sum(
                        sharded.shard_open_count(s)
                        for s in range(sharded.num_shards)
                    )
                    assert per_shard == sharded.open_cell_count()
                    for worker in ("w0", "w3", "never-seen"):
                        assert (
                            mono.candidate_cells(worker)
                            == sharded.candidate_cells(worker)
                        )

    def test_shard_candidates_concatenate_to_global(self, mixed_schema):
        answers = _random_answers(mixed_schema, steps=60, seed=9)
        state = ShardedSessionState(
            mixed_schema, num_shards=3, max_answers_per_cell=3
        )
        state.sync(answers)
        for worker in ("w0", "w5", "fresh"):
            concatenated = [
                cell
                for shard in range(state.num_shards)
                for cell in state.shard_candidate_cells(shard, worker)
            ]
            assert concatenated == state.candidate_cells(worker)

    def test_cap_hit_inside_a_single_shard(self, mixed_schema):
        # Fill every cell of shard 0's rows up to the cap: that shard's open
        # pool must drain to zero while the other shards stay untouched.
        state = ShardedSessionState(
            mixed_schema, num_shards=4, max_answers_per_cell=1
        )
        start, stop = state.shard_bounds(0)
        answers = AnswerSet(mixed_schema)
        for row in range(start, stop):
            for col, column in enumerate(mixed_schema.columns):
                value = column.labels[0] if column.is_categorical else 1.0
                answers.add_answer("filler", row, col, value)
        state.sync(answers)
        assert state.shard_open_count(0) == 0
        for shard in range(1, state.num_shards):
            bounds = state.shard_bounds(shard)
            expected = (bounds[1] - bounds[0]) * mixed_schema.num_columns
            assert state.shard_open_count(shard) == expected
        assert state.shard_candidate_cells(0, "someone-else") == []
        assert state.has_open_cells()

    def test_routing_after_sync_rebuild(self, mixed_schema):
        # Presenting a different answer set rebuilds from scratch; the
        # per-shard open accounting must be rebuilt with it, not carried
        # over from the previous source.
        state = ShardedSessionState(
            mixed_schema, num_shards=2, max_answers_per_cell=1
        )
        first = _random_answers(mixed_schema, steps=40, seed=1)
        state.sync(first)
        other = AnswerSet(mixed_schema)
        label = mixed_schema.columns[0].labels[0]
        other.add_answer("solo", mixed_schema.num_rows - 1, 0, label)
        state.sync(other)
        assert np.array_equal(state.counts, other.answer_counts())
        last_shard = state.shard_of_row(mixed_schema.num_rows - 1)
        start, stop = state.shard_bounds(last_shard)
        expected = (stop - start) * mixed_schema.num_columns - 1
        assert state.shard_open_count(last_shard) == expected
        per_shard = sum(
            state.shard_open_count(s) for s in range(state.num_shards)
        )
        assert per_shard == state.open_cell_count()


class TestMergeTopK:
    def test_matches_global_stable_top_k(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            n = int(rng.integers(1, 50))
            # Draw from few distinct values so cross-shard ties are common.
            gains = rng.choice([0.0, 0.25, 0.5, 1.0], size=n)
            cuts = np.sort(rng.integers(0, n + 1, size=int(rng.integers(0, 5))))
            parts = np.split(gains, cuts)
            k = int(rng.integers(1, n + 3))
            assert list(merge_top_k_stable(parts, k)) == list(
                top_k_stable(gains, k)
            )

    def test_empty_parts_are_skipped(self):
        parts = [np.zeros(0), np.array([1.0, 3.0]), np.zeros(0), np.array([2.0])]
        assert list(merge_top_k_stable(parts, 2)) == [1, 2]


class TestShardedAssignmentPolicy:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_synthetic(
            num_rows=10, num_columns=4, categorical_ratio=0.5,
            answers_per_task=2, num_workers=8, seed=3,
        )

    def _replay(self, dataset, policy, steps=12, k=3, seed=9):
        rng = np.random.default_rng(seed)
        answers = dataset.answers.copy()
        ids = dataset.worker_pool.worker_ids()
        decisions = []
        for _ in range(steps):
            worker = ids[int(rng.integers(len(ids)))]
            try:
                batch = policy.select(worker, answers, k=k)
            except AssignmentError:
                continue
            decisions.append((worker, batch.cells, batch.gains))
            for row, col in batch.cells:
                value = dataset.oracle.answer(worker, row, col, rng)
                answers.add_answer(worker, row, col, value)
            policy.observe(answers)
        return decisions

    def _assigner(self, dataset, cap=4):
        return TCrowdAssigner(
            dataset.schema, model=_fast_model(),
            warm_start=False, max_answers_per_cell=cap,
        )

    def test_identical_sequences_across_shard_counts(self, dataset):
        baseline = self._replay(dataset, self._assigner(dataset))
        assert baseline
        for num_shards in (1, 2, 4):
            policy = ShardedAssignmentPolicy(
                self._assigner(dataset), num_shards=num_shards
            )
            assert self._replay(dataset, policy) == baseline

    def test_uneven_shard_counts_stay_identical(self, dataset):
        # 10 rows over 3 / 7 shards: unequal shard sizes must not change
        # candidate order or tie-breaks.
        baseline = self._replay(dataset, self._assigner(dataset))
        assert baseline
        for num_shards in (3, 7):
            policy = ShardedAssignmentPolicy(
                self._assigner(dataset), num_shards=num_shards
            )
            assert self._replay(dataset, policy) == baseline

    def test_thread_pool_matches_sequential(self, dataset):
        baseline = self._replay(dataset, self._assigner(dataset))
        assert baseline
        with ShardedAssignmentPolicy(
            self._assigner(dataset), num_shards=4, max_workers=3
        ) as policy:
            assert self._replay(dataset, policy) == baseline

    def test_tight_cap_drains_shards_identically(self, dataset):
        # cap=3 on 2-answer-per-cell seeds leaves one open slot per cell:
        # caps trip inside single shards within a few steps and the whole
        # pool drains mid-replay; both engines must agree throughout.
        baseline = self._replay(dataset, self._assigner(dataset, cap=3), steps=20)
        assert baseline
        policy = ShardedAssignmentPolicy(
            self._assigner(dataset, cap=3), num_shards=4
        )
        replay = self._replay(dataset, policy, steps=20)
        assert replay == baseline
        # The cap bit: the replay really exhausted the pool (each cell had
        # exactly one open slot), so caps tripped inside every shard.
        assert sum(len(cells) for _w, cells, _g in baseline) == (
            dataset.schema.num_cells
        )

    def test_session_state_is_sharded(self, dataset):
        policy = ShardedAssignmentPolicy(self._assigner(dataset), num_shards=2)
        state = policy.session_state(dataset.answers.copy())
        assert isinstance(state, ShardedSessionState)
        assert state.num_shards == 2

    def test_monte_carlo_gains_rejected(self, dataset):
        inner = TCrowdAssigner(
            dataset.schema, model=_fast_model(), continuous_samples=4
        )
        with pytest.raises(ConfigurationError):
            ShardedAssignmentPolicy(inner, num_shards=2)

    def test_platform_session_shards_knob(self, dataset):
        from repro.config import SessionSpec

        def trace(shards):
            builder = SessionSpec.builder().simulation(
                target_answers_per_task=2.5, seed=11, max_steps=8
            )
            if shards:
                builder.sharded(shards)
            return CrowdsourcingSession(
                dataset,
                self._assigner(dataset),
                _fast_model(),
                spec=builder.build(),
            ).run()

        plain = trace(None)
        sharded = trace(3)
        assert "[sharded x3]" in sharded.policy_name
        plain_series = [
            (record.answers_collected, record.error_rate, record.mnad)
            for record in plain.records
        ]
        sharded_series = [
            (record.answers_collected, record.error_rate, record.mnad)
            for record in sharded.records
        ]
        assert plain_series == sharded_series

    def test_platform_session_rejects_non_tcrowd_policy(self, dataset):
        from repro.baselines.assignment_simple import RandomAssigner
        from repro.config import SessionSpec

        spec = SessionSpec.builder().sharded(2).simulation(
            target_answers_per_task=2.0
        ).build()
        with pytest.raises(ConfigurationError):
            CrowdsourcingSession(
                dataset,
                RandomAssigner(dataset.schema, seed=1),
                _fast_model(),
                spec=spec,
            )
