"""Tabular data model of Section 3 (Definition 1).

A :class:`TableSchema` describes the two-dimensional table ``C = {c_ij}`` that
is being crowdsourced: the entity (key) attribute, and one
:class:`Column` per non-key attribute.  Each column is either *categorical*
(finite unordered label set) or *continuous* (real-valued with a domain
interval).  Cells are addressed by ``(row, column)`` integer indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.utils.exceptions import ConfigurationError, DataError


class AttributeType(enum.Enum):
    """Datatype of a column: categorical (nominal) or continuous (numeric)."""

    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Column:
    """A single non-key attribute of the crowdsourced table.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    attribute_type:
        :class:`AttributeType.CATEGORICAL` or :class:`AttributeType.CONTINUOUS`.
    labels:
        The finite label set ``L_j`` (categorical columns only).
    domain:
        ``(low, high)`` value range (continuous columns only).  Used by the
        synthetic data generator and by noise injection; answers outside the
        domain are accepted but clipped by the platform simulator.
    """

    name: str
    attribute_type: AttributeType
    labels: tuple = ()
    domain: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Column name must be non-empty")
        if self.is_categorical:
            if len(self.labels) < 2:
                raise ConfigurationError(
                    f"Categorical column {self.name!r} needs at least 2 labels, "
                    f"got {len(self.labels)}"
                )
            if len(set(self.labels)) != len(self.labels):
                raise ConfigurationError(
                    f"Categorical column {self.name!r} has duplicate labels"
                )
            object.__setattr__(self, "labels", tuple(self.labels))
        else:
            if self.labels:
                raise ConfigurationError(
                    f"Continuous column {self.name!r} must not define labels"
                )
            if self.domain:
                low, high = self.domain
                if not low < high:
                    raise ConfigurationError(
                        f"Continuous column {self.name!r} has an empty domain "
                        f"{self.domain!r}"
                    )
                object.__setattr__(self, "domain", (float(low), float(high)))

    # -- convenience -------------------------------------------------------

    @property
    def is_categorical(self) -> bool:
        """True if the column holds nominal labels."""
        return self.attribute_type is AttributeType.CATEGORICAL

    @property
    def is_continuous(self) -> bool:
        """True if the column holds real values."""
        return self.attribute_type is AttributeType.CONTINUOUS

    @property
    def num_labels(self) -> int:
        """Size of the label set ``|L_j|`` (categorical columns only)."""
        if not self.is_categorical:
            raise ConfigurationError(
                f"Column {self.name!r} is continuous and has no label set"
            )
        return len(self.labels)

    def label_index(self, label) -> int:
        """Return the index of ``label`` within the label set ``L_j``."""
        try:
            return self.labels.index(label)
        except ValueError as exc:
            raise DataError(
                f"Label {label!r} is not in the domain of column {self.name!r}"
            ) from exc

    def contains_label(self, label) -> bool:
        """True if ``label`` belongs to the label set of this column."""
        return label in self.labels

    # -- constructors ------------------------------------------------------

    @classmethod
    def categorical(cls, name: str, labels: Iterable) -> "Column":
        """Build a categorical column with the given label set."""
        return cls(name, AttributeType.CATEGORICAL, labels=tuple(labels))

    @classmethod
    def continuous(cls, name: str, domain: tuple = ()) -> "Column":
        """Build a continuous column with an optional ``(low, high)`` domain."""
        return cls(name, AttributeType.CONTINUOUS, domain=tuple(domain))


@dataclass(frozen=True)
class TableSchema:
    """Schema of the crowdsourced table: key attribute, columns, row count.

    Cells are addressed by ``(row, column)`` pairs where ``row`` is in
    ``range(num_rows)`` and ``column`` in ``range(num_columns)``.
    """

    entity_attribute: str
    columns: tuple
    num_rows: int
    _name_to_index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ConfigurationError(
                f"num_rows must be positive, got {self.num_rows}"
            )
        columns = tuple(self.columns)
        if not columns:
            raise ConfigurationError("A schema needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ConfigurationError("Column names must be unique")
        if self.entity_attribute in names:
            raise ConfigurationError(
                "The entity attribute is the key and must not also be a column"
            )
        object.__setattr__(self, "columns", columns)
        object.__setattr__(
            self, "_name_to_index", {name: j for j, name in enumerate(names)}
        )

    # -- sizes -------------------------------------------------------------

    @property
    def num_columns(self) -> int:
        """Number of non-key columns ``M``."""
        return len(self.columns)

    @property
    def num_cells(self) -> int:
        """Total number of cells ``N * M``."""
        return self.num_rows * self.num_columns

    # -- lookups -----------------------------------------------------------

    def column(self, ref) -> Column:
        """Return a column by integer index or by name."""
        if isinstance(ref, str):
            return self.columns[self.column_index(ref)]
        return self.columns[ref]

    def column_index(self, name: str) -> int:
        """Return the index of the column called ``name``."""
        try:
            return self._name_to_index[name]
        except KeyError as exc:
            raise DataError(f"Unknown column {name!r}") from exc

    @property
    def categorical_indices(self) -> tuple:
        """Indices of all categorical columns."""
        return tuple(
            j for j, column in enumerate(self.columns) if column.is_categorical
        )

    @property
    def continuous_indices(self) -> tuple:
        """Indices of all continuous columns."""
        return tuple(
            j for j, column in enumerate(self.columns) if column.is_continuous
        )

    def cells(self) -> Iterator[tuple]:
        """Iterate over every ``(row, column)`` cell address."""
        for i in range(self.num_rows):
            for j in range(self.num_columns):
                yield i, j

    def validate_cell(self, row: int, col: int) -> None:
        """Raise :class:`DataError` if ``(row, col)`` is out of bounds."""
        if not 0 <= row < self.num_rows:
            raise DataError(
                f"Row index {row} out of range [0, {self.num_rows})"
            )
        if not 0 <= col < self.num_columns:
            raise DataError(
                f"Column index {col} out of range [0, {self.num_columns})"
            )

    def validate_value(self, col: int, value) -> None:
        """Raise :class:`DataError` if ``value`` is invalid for column ``col``."""
        column = self.columns[col]
        if column.is_categorical:
            if not column.contains_label(value):
                raise DataError(
                    f"Value {value!r} is not a valid label for column "
                    f"{column.name!r}"
                )
        else:
            try:
                float(value)
            except (TypeError, ValueError) as exc:
                raise DataError(
                    f"Value {value!r} is not numeric for continuous column "
                    f"{column.name!r}"
                ) from exc

    # -- constructors ------------------------------------------------------

    @classmethod
    def build(
        cls,
        entity_attribute: str,
        columns: Sequence[Column],
        num_rows: int,
    ) -> "TableSchema":
        """Convenience constructor accepting any column sequence."""
        return cls(entity_attribute, tuple(columns), int(num_rows))
