"""Shared fixtures for the test suite.

Expensive objects (simulated datasets, fitted inference results) are
session-scoped so the several hundred tests stay fast; tests must not mutate
them — tests that need a mutable answer set build their own via the factory
fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.inference import TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.core.worker_model import WorkerModel
from repro.datasets import generate_synthetic, load_restaurant


@pytest.fixture(scope="session")
def mixed_schema() -> TableSchema:
    """A small schema with two categorical and two continuous columns."""
    columns = (
        Column.categorical("color", ("red", "green", "blue")),
        Column.categorical("size", ("small", "large")),
        Column.continuous("weight", (0.0, 100.0)),
        Column.continuous("price", (0.0, 1000.0)),
    )
    return TableSchema.build("item", columns, num_rows=8)


@pytest.fixture(scope="session")
def worker_variances() -> dict:
    """Latent worker variances used by the hand-built answer sets."""
    return {
        "expert": 0.1,
        "good": 0.4,
        "average": 1.0,
        "poor": 3.0,
        "spammer": 9.0,
    }


def _generate_answers(schema, variances, seed=0, answers_per_cell=4):
    """Build an answer set from the paper's generative model."""
    rng = np.random.default_rng(seed)
    model = WorkerModel(1.0)
    truth = {}
    for i in range(schema.num_rows):
        for j, column in enumerate(schema.columns):
            if column.is_categorical:
                truth[(i, j)] = column.labels[int(rng.integers(column.num_labels))]
            else:
                low, high = column.domain
                truth[(i, j)] = float(rng.uniform(low, high))
    answers = AnswerSet(schema)
    workers = list(variances)
    for i in range(schema.num_rows):
        for j, column in enumerate(schema.columns):
            chosen = rng.choice(workers, size=answers_per_cell, replace=False)
            for worker in chosen:
                variance = variances[worker]
                if column.is_categorical:
                    quality = float(model.quality_from_variance(variance))
                    index = model.sample_categorical_answer(
                        rng, column.label_index(truth[(i, j)]), quality,
                        column.num_labels,
                    )
                    answers.add_answer(worker, i, j, column.labels[index])
                else:
                    low, high = column.domain
                    scale = (high - low) / 10.0
                    noise = rng.normal(0.0, scale * np.sqrt(variance))
                    answers.add_answer(worker, i, j, float(truth[(i, j)]) + noise)
    return truth, answers


@pytest.fixture(scope="session")
def mixed_truth_and_answers(mixed_schema, worker_variances):
    """Ground truth and generated answers for the mixed schema."""
    return _generate_answers(mixed_schema, worker_variances, seed=0)


@pytest.fixture(scope="session")
def mixed_answers(mixed_truth_and_answers) -> AnswerSet:
    """Answer set over the mixed schema (do not mutate; copy() first)."""
    return mixed_truth_and_answers[1]


@pytest.fixture(scope="session")
def mixed_truth(mixed_truth_and_answers) -> dict:
    """Ground truth for the mixed schema."""
    return mixed_truth_and_answers[0]


@pytest.fixture(scope="session")
def fitted_result(mixed_schema, mixed_answers):
    """A fitted T-Crowd inference result over the mixed schema."""
    model = TCrowdModel(max_iterations=20, seed=1)
    return model.fit(mixed_schema, mixed_answers)


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic dataset with oracle and worker pool."""
    return generate_synthetic(
        num_rows=15,
        num_columns=6,
        categorical_ratio=0.5,
        answers_per_task=3,
        num_workers=20,
        seed=42,
    )


@pytest.fixture(scope="session")
def small_restaurant():
    """A reduced simulated Restaurant dataset (30 rows)."""
    return load_restaurant(seed=5, num_rows=30)


@pytest.fixture()
def answer_factory(mixed_schema, worker_variances):
    """Factory building fresh (truth, answers) pairs with a chosen seed."""

    def build(seed=0, answers_per_cell=4):
        return _generate_answers(
            mixed_schema, worker_variances, seed=seed,
            answers_per_cell=answers_per_cell,
        )

    return build
