"""Durable crowd sessions: write-ahead answer log + engine-state snapshots.

A live serving session must survive its process.  The durability model is
the classic pair:

* **Write-ahead log** (:class:`WriteAheadLog`) — one JSONL record per
  session *event*, appended (and flushed) before the event is applied to
  the in-memory engine.  Three event types exist: ``answers`` (a batch of
  collected answers, optionally followed by a model ``observe``),
  ``select`` (a task request — logged because selects can trigger refits,
  which are part of the warm-start EM chain) and ``estimates`` (a full
  catch-up fit — same reason).  A torn final write (partial line) is
  detected and dropped on recovery, and the file is truncated back to the
  last complete record before new appends.

* **Snapshots** (:class:`SnapshotStore`) — periodic engine-state files
  keyed by ``(epoch, answers_seen)``: the serialized
  :class:`~repro.core.inference.InferenceResult` of the latest refit plus
  the WAL position they cover.  Snapshots are written atomically
  (tmp + rename) and are pure *accelerators*: recovery without any
  snapshot replays the whole log from record zero and reaches the same
  state.

**Replay is bit-identical.**  Everything the engine does is a
deterministic function of the event sequence: answers are append-only,
refits are deterministic EM (warm-started from the previous result), and
selection is a deterministic ranking.  Recovery therefore rebuilds the
exact session: the :class:`~repro.engine.SessionState` /
:class:`~repro.engine.ShardedSessionState` indexes (re-synced from the
recovered answers), the answer set, and the model's warm-start chain —
either by re-seating a snapshot's serialized result
(:func:`serialize_result` round-trips every float exactly) and replaying
the WAL tail with full side effects, or by replaying the whole log.  The
continued assignment sequence matches an uninterrupted run bit for bit —
the property ``benchmarks/run_bench.py --serve`` records as
``recovery_identical`` and CI gates on.  (The guarantee assumes a
deterministic serving mode: the synchronous/sharded policies, or the
async ones at ``max_stale_answers=0``.  With a positive staleness bound,
background refit *timing* is nondeterministic, so replay reproduces a
valid execution of the same session rather than the exact one observed.)

Snapshot-epoch protocol: epochs increase by one per snapshot and never
reuse a number, so ``snapshot-<epoch>-<answers_seen>.json`` names are
totally ordered and immutable once written — the same property that lets
:class:`~repro.engine.ModelSnapshot` cross thread boundaries lets these
files cross *process* boundaries, which is the staging ground for
process-level sharding (one recovered engine per shard group).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.inference import InferenceResult
from repro.core.posteriors import CategoricalPosterior, GaussianPosterior
from repro.core.schema import TableSchema
from repro.core.worker_model import WorkerModel
from repro.utils.exceptions import (
    AssignmentError,
    ConfigurationError,
    DurabilityError,
)

Cell = Tuple[int, int]

#: Bump when the WAL / snapshot record layout changes incompatibly.
FORMAT_VERSION = 1

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d+)-(\d+)\.json$")


# -- model-state codec --------------------------------------------------------


def serialize_result(result: InferenceResult) -> dict:
    """Serialize an :class:`InferenceResult` to a JSON-safe dict, exactly.

    Every float goes through Python's ``repr``-based JSON encoding, which
    round-trips IEEE-754 doubles bit for bit; categorical posteriors are
    restored without renormalisation
    (:meth:`~repro.core.posteriors.CategoricalPosterior.from_normalized`),
    so ``deserialize_result(serialize_result(r), r.schema)`` reproduces the
    result's arrays and posteriors to the last bit — the precondition for
    replaying the warm-start chain identically after recovery.
    """
    posteriors = []
    for (row, col), posterior in result.posteriors.items():
        if posterior.is_categorical:
            payload = [float(p) for p in posterior.probs]
            kind = "c"
        else:
            payload = [float(posterior.mean), float(posterior.variance)]
            kind = "g"
        posteriors.append([int(row), int(col), kind, payload])
    return {
        "epsilon": float(result.worker_model.epsilon),
        "worker_ids": list(result.worker_ids),
        "alpha": [float(x) for x in result.alpha],
        "beta": [float(x) for x in result.beta],
        "phi": [float(x) for x in result.phi],
        "column_scale": [float(x) for x in result.column_scale],
        "column_offset": [float(x) for x in result.column_offset],
        "posteriors": posteriors,
        "objective_trace": [float(x) for x in result.objective_trace],
        "n_iterations": int(result.n_iterations),
        "converged": bool(result.converged),
        "stopped_by": str(result.stopped_by),
    }


def deserialize_result(payload: dict, schema: TableSchema) -> InferenceResult:
    """Rebuild the :class:`InferenceResult` serialized by :func:`serialize_result`."""
    posteriors = {}
    for row, col, kind, data in payload["posteriors"]:
        row, col = int(row), int(col)
        if kind == "c":
            posteriors[(row, col)] = CategoricalPosterior.from_normalized(
                schema.columns[col].labels, np.asarray(data, dtype=float)
            )
        elif kind == "g":
            posteriors[(row, col)] = GaussianPosterior(
                float(data[0]), float(data[1])
            )
        else:
            raise DurabilityError(f"Unknown posterior kind {kind!r} in snapshot")
    return InferenceResult(
        schema=schema,
        worker_model=WorkerModel(float(payload["epsilon"])),
        worker_ids=list(payload["worker_ids"]),
        alpha=np.asarray(payload["alpha"], dtype=float),
        beta=np.asarray(payload["beta"], dtype=float),
        phi=np.asarray(payload["phi"], dtype=float),
        column_scale=np.asarray(payload["column_scale"], dtype=float),
        column_offset=np.asarray(payload["column_offset"], dtype=float),
        posteriors=posteriors,
        objective_trace=list(payload["objective_trace"]),
        n_iterations=int(payload["n_iterations"]),
        converged=bool(payload["converged"]),
        stopped_by=str(payload["stopped_by"]),
    )


# -- write-ahead log ----------------------------------------------------------


def read_wal(path: pathlib.Path) -> Tuple[List[dict], int]:
    """Read every complete record of a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset
    one past the last complete record.  A torn tail — a final line without
    its newline, or one that no longer parses as JSON — is dropped, as is
    everything after it (a corrupt middle record invalidates the rest of
    the log: later records may depend on the lost event).
    """
    records: List[dict] = []
    valid_bytes = 0
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return records, valid_bytes
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: record written without its terminator
        line = data[offset:newline]
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break  # corrupt record: drop it and everything after
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = newline + 1
        valid_bytes = offset
    return records, valid_bytes


class WriteAheadLog:
    """Append-only JSONL event log with torn-tail recovery.

    Opening an existing file truncates it back to its last complete record
    (so a torn write can never merge with the next append) and resumes the
    record count from there.  ``fsync=True`` forces every append to disk —
    full power-loss durability at a heavy per-event cost; the default
    flush-only mode survives process crashes, which is the failure model
    the recovery benchmark exercises.

    The on-disk file is the source of truth: only the record count and the
    newest record are held in memory, so a long-lived session's log costs
    O(1) memory regardless of how many events it serves.
    """

    def __init__(self, path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        records, valid_bytes = read_wal(self.path)
        self._count = len(records)
        self._last_record: Optional[dict] = records[-1] if records else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        if self._file.tell() != valid_bytes:
            self._file.truncate(valid_bytes)
            self._file.seek(valid_bytes)
        self._closed = False

    @property
    def record_count(self) -> int:
        """Number of complete records in the log."""
        return self._count

    @property
    def last_record(self) -> Optional[dict]:
        """The newest complete record (``None`` on an empty log)."""
        return self._last_record

    @property
    def records(self) -> List[dict]:
        """All complete records, oldest first — re-read from disk.

        Every append was flushed before it was counted, so the read always
        sees at least ``record_count`` records.
        """
        return read_wal(self.path)[0]

    def append(self, record: dict) -> int:
        """Durably append one record; return its index."""
        if self._closed:
            raise DurabilityError(f"WAL {self.path} is closed")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._count += 1
        self._last_record = record
        return self._count - 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._file.close()


# -- snapshots ----------------------------------------------------------------


@dataclass(frozen=True)
class Snapshot:
    """One loaded snapshot file (see the module docs for the protocol)."""

    epoch: int
    answers_seen: int
    wal_records: int
    payload: dict
    path: pathlib.Path


class SnapshotStore:
    """Atomic, epoch-ordered engine-state snapshot files in one directory."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def save(self, payload: dict) -> pathlib.Path:
        """Write one snapshot atomically; return its path."""
        epoch = int(payload["epoch"])
        answers_seen = int(payload["answers_seen"])
        name = f"snapshot-{epoch:06d}-{answers_seen:08d}.json"
        path = self.directory / name
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    def _entries(self) -> List[Tuple[int, int, pathlib.Path]]:
        found = []
        for path in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(path.name)
            if match:
                found.append((int(match.group(1)), int(match.group(2)), path))
        return sorted(found, key=lambda entry: (entry[0], entry[1]))

    def paths(self) -> List[pathlib.Path]:
        """Snapshot files, oldest epoch first."""
        return [path for _epoch, _seen, path in self._entries()]

    def next_epoch(self) -> int:
        """One past the highest epoch number any file has ever used here.

        Epochs must never be reused — not even those of snapshots that a
        recovery later discards — so a file name, once observed, always
        refers to the same immutable content.
        """
        entries = self._entries()
        return entries[-1][0] + 1 if entries else 0

    def discard_lost_timeline(self, max_wal_records: int) -> List[pathlib.Path]:
        """Delete snapshots covering more WAL records than survive on disk.

        A crash that loses the WAL tail can strand snapshots describing
        events that no longer exist; they can never become valid again (the
        regrown log diverges from the lost one), and leaving them around
        would let a *later* recovery pick one once the new log grows past
        their record count.  Recovery calls this before replaying.
        """
        removed = []
        for _epoch, _seen, path in self._entries():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                stale = int(payload["wal_records"]) > max_wal_records
            except (OSError, ValueError, KeyError):
                continue  # unreadable files are merely skipped, never chosen
            if stale:
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    def latest(self, max_wal_records: Optional[int] = None) -> Optional[Snapshot]:
        """Newest loadable snapshot covering at most ``max_wal_records``.

        Unreadable files and snapshots that claim more WAL records than
        survive on disk (possible when the log lost its tail after the
        snapshot was cut) are skipped — recovery then falls back to an
        older snapshot or to a full replay.
        """
        for path in reversed(self.paths()):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                snapshot = Snapshot(
                    epoch=int(payload["epoch"]),
                    answers_seen=int(payload["answers_seen"]),
                    wal_records=int(payload["wal_records"]),
                    payload=payload,
                    path=path,
                )
            except (OSError, ValueError, KeyError):
                continue
            if max_wal_records is not None and snapshot.wal_records > max_wal_records:
                continue
            return snapshot
        return None


# -- durable session ----------------------------------------------------------


class DurableSession:
    """An answer set + serving policy behind a write-ahead log.

    All session mutations go through this wrapper: events are logged
    *before* they are applied (WAL discipline), and a snapshot of the
    engine state is cut every ``snapshot_every`` answers.  Constructing a
    session over a directory that already holds a log **recovers** it:
    the newest usable snapshot is re-seated into the (freshly built,
    identically configured) ``policy`` and the WAL tail is replayed with
    full side effects; without a usable snapshot the whole log replays.

    Parameters
    ----------
    schema:
        Table schema of the session.
    policy:
        The serving policy.  Bit-identical recovery requires a
        deterministic policy (see the module docs); snapshot acceleration
        additionally requires the ``snapshot_state`` / ``restore_state``
        protocol (all T-Crowd serving modes implement it).
    directory:
        Where the log and snapshots live.  ``None`` runs fully in memory —
        the same code path with durability disabled, which is how the
        non-durable HTTP sessions are served.
    snapshot_every:
        Cut a snapshot after this many newly collected answers.
    fsync:
        See :class:`WriteAheadLog`.
    fresh:
        Refuse to attach to a directory that already holds a log (used by
        the platform simulator, where silently resuming a previous run
        would corrupt the experiment).
    """

    def __init__(
        self,
        schema: TableSchema,
        policy,
        directory=None,
        snapshot_every: int = 200,
        fsync: bool = False,
        fresh: bool = False,
    ) -> None:
        if snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.schema = schema
        self.policy = policy
        self.snapshot_every = int(snapshot_every)
        self.answers = AnswerSet(schema)
        self.replayed_records = 0
        self.recovered_epoch: Optional[int] = None
        self.snapshots_written = 0
        self._snapshot_epoch = 0
        self._answers_at_last_snapshot = 0
        self._wal: Optional[WriteAheadLog] = None
        self._snapshots: Optional[SnapshotStore] = None
        if directory is not None:
            directory = pathlib.Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            self._snapshots = SnapshotStore(directory / "snapshots")
            self._wal = WriteAheadLog(directory / "wal.jsonl", fsync=fsync)
            if self._wal.record_count:
                if fresh:
                    self._wal.close()
                    raise ConfigurationError(
                        f"durable directory {directory} already holds a "
                        f"write-ahead log with {self._wal.record_count} "
                        "records; recover it with DurableSession(...) on a "
                        "fresh policy instead of starting a new run over it"
                    )
                self._recover()

    # -- properties ----------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True when events are being logged to disk."""
        return self._wal is not None

    @property
    def wal_records(self) -> int:
        """Number of complete records in the log (0 when in-memory)."""
        return self._wal.record_count if self._wal is not None else 0

    @property
    def events(self) -> List[dict]:
        """Copy of the logged events, oldest first (empty when in-memory)."""
        return list(self._wal.records) if self._wal is not None else []

    def loop_decisions(self) -> List[Tuple[str, Tuple[Cell, ...]]]:
        """The logged assignment outcomes ``(worker, cells)``, oldest first.

        Reconstructed from the ``answers`` events with ``observe=True``
        (each one is the collected batch of exactly one assignment), so a
        recovery driver can compare the prefix a crashed process completed
        against an uninterrupted run.
        """
        if self._wal is None:
            return []
        decisions = []
        for record in self._wal.records:
            if record.get("t") == "answers" and record.get("o", True):
                cells = tuple(
                    (int(row), int(col)) for row, col, _value in record["a"]
                )
                decisions.append((record["w"], cells))
        return decisions

    def dangling_select(self) -> Optional[Tuple[str, int]]:
        """``(worker, k)`` if the log ends in a select whose batch was lost.

        A crash between logging a select and logging its collected answers
        leaves this marker; the recovery driver re-issues the select (the
        replayed refit made it deterministic) instead of drawing a new
        worker.
        """
        if self._wal is None:
            return None
        last = self._wal.last_record
        if last is not None and last.get("t") == "select":
            return last["w"], int(last["k"])
        return None

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        records = self._wal.records
        start = 0
        snapshot = None
        if self._snapshots is not None:
            # Epochs are never reused, even when the files carrying the
            # highest ones came from a timeline the crash lost; only after
            # fixing the counter are those stranded snapshots deleted (they
            # could otherwise be picked by a *later* recovery once the
            # regrown log passes their record count).
            self._snapshot_epoch = self._snapshots.next_epoch()
            self._snapshots.discard_lost_timeline(len(records))
            snapshot = self._snapshots.latest(max_wal_records=len(records))
        if snapshot is not None:
            self._answers_at_last_snapshot = snapshot.answers_seen
        model = snapshot.payload.get("model") if snapshot is not None else None
        if model is not None and hasattr(self.policy, "restore_state"):
            # Fast path: rebuild the answer prefix without side effects,
            # re-seat the snapshot's exact model state, then replay the tail.
            for record in records[: snapshot.wal_records]:
                if record.get("t") == "answers":
                    self._add_answers(record)
            if len(self.answers) != snapshot.answers_seen:
                raise DurabilityError(
                    f"snapshot {snapshot.path.name} covers "
                    f"{snapshot.answers_seen} answers but its WAL prefix "
                    f"({snapshot.wal_records} records) holds "
                    f"{len(self.answers)}; the durable directory is "
                    "inconsistent"
                )
            result = deserialize_result(model["result"], self.schema)
            self.policy.restore_state(result, int(model["answers_seen"]))
            self.recovered_epoch = snapshot.epoch
            start = snapshot.wal_records
        for record in records[start:]:
            self._apply(record)
        self.replayed_records = len(records) - start

    def _add_answers(self, record: dict) -> None:
        for row, col, value in record["a"]:
            self.answers.add_answer(record["w"], int(row), int(col), value)

    def _apply(self, record: dict) -> None:
        """Re-execute one logged event with full side effects."""
        kind = record.get("t")
        if kind == "answers":
            self._add_answers(record)
            if record.get("o", True):
                self.policy.observe(self.answers)
        elif kind == "select":
            try:
                self.policy.select(record["w"], self.answers, int(record["k"]))
            except AssignmentError:
                pass  # the live call failed too; the refit side effect stands
        elif kind == "estimates":
            if len(self.answers):
                self.policy.final_result(self.answers)
        # Unknown record types are skipped (forward compatibility).

    # -- session events -------------------------------------------------------

    def select(self, worker: str, k: int = 1):
        """Log and run one assignment request."""
        if self._wal is not None:
            self._wal.append({"t": "select", "w": worker, "k": int(k)})
        return self.policy.select(worker, self.answers, k)

    def append_answers(
        self, worker: str, items: Sequence[Tuple[int, int, object]],
        observe: bool = True,
    ) -> int:
        """Log and ingest one batch of collected answers.

        ``items`` is a sequence of ``(row, col, value)``.  The batch is
        validated against the schema *before* it is logged, so a malformed
        request can never poison the log.  Returns the new answer count.
        """
        items = [(int(row), int(col), value) for row, col, value in items]
        for row, col, value in items:
            self.schema.validate_cell(row, col)
            self.schema.validate_value(col, value)
        if self._wal is not None:
            record = {"t": "answers", "w": worker, "a": [list(i) for i in items]}
            if not observe:
                record["o"] = False
            self._wal.append(record)
        for row, col, value in items:
            self.answers.add_answer(worker, row, col, value)
        if observe:
            self.policy.observe(self.answers)
        self.maybe_snapshot()
        return len(self.answers)

    def estimates(self) -> InferenceResult:
        """Log and run a full catch-up fit; return its result."""
        if len(self.answers) == 0:
            raise ConfigurationError(
                "Cannot estimate truths before any answer was collected"
            )
        if not hasattr(self.policy, "final_result"):
            raise ConfigurationError(
                f"policy {type(self.policy).__name__} does not support "
                "estimate requests (no final_result method)"
            )
        if self._wal is not None:
            self._wal.append({"t": "estimates"})
        return self.policy.final_result(self.answers)

    # -- snapshots ------------------------------------------------------------

    def maybe_snapshot(self) -> Optional[pathlib.Path]:
        """Cut a snapshot if ``snapshot_every`` answers arrived since the last."""
        if self._snapshots is None:
            return None
        if len(self.answers) - self._answers_at_last_snapshot < self.snapshot_every:
            return None
        return self.snapshot()

    def snapshot(self) -> Optional[pathlib.Path]:
        """Cut one engine-state snapshot now (no-op when in-memory)."""
        if self._snapshots is None or self._wal is None:
            return None
        state = None
        if hasattr(self.policy, "snapshot_state"):
            state = self.policy.snapshot_state()
        model = None
        if state is not None:
            result, answers_seen = state
            model = {
                "answers_seen": int(answers_seen),
                "result": serialize_result(result),
            }
        payload = {
            "format": FORMAT_VERSION,
            "epoch": self._snapshot_epoch,
            "answers_seen": len(self.answers),
            "wal_records": self._wal.record_count,
            "model": model,
        }
        path = self._snapshots.save(payload)
        self._snapshot_epoch += 1
        self._answers_at_last_snapshot = len(self.answers)
        self.snapshots_written += 1
        return path

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Cut a final snapshot, close the log, release policy threads."""
        if self._wal is not None and not self._wal._closed:
            if len(self.answers) > self._answers_at_last_snapshot:
                self.snapshot()
            self._wal.close()
        close = getattr(self.policy, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "DurableSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- introspection ------------------------------------------------------------


def durable_summary(directory) -> Dict[str, object]:
    """Cheap summary of a durable directory (used by `/healthz` and tests)."""
    directory = pathlib.Path(directory)
    records, valid_bytes = read_wal(directory / "wal.jsonl")
    store = SnapshotStore(directory / "snapshots")
    snapshot = store.latest(max_wal_records=len(records))
    answers = sum(len(r["a"]) for r in records if r.get("t") == "answers")
    return {
        "wal_records": len(records),
        "wal_bytes": valid_bytes,
        "answers_logged": answers,
        "snapshots": len(store.paths()),
        "latest_snapshot_epoch": None if snapshot is None else snapshot.epoch,
        "latest_snapshot_answers_seen": (
            None if snapshot is None else snapshot.answers_seen
        ),
    }
