"""Benchmarks: Figures 11 and 12 — efficiency of assignment and inference."""

from conftest import FAST_MODEL, run_once

from repro.experiments import (
    measure_engine_speedup,
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
)
from repro.experiments.efficiency import engine_speedup_report


def test_figure11_assignment_time(benchmark, report_writer):
    """Regenerate Figure 11: assignment cost vs answers collected per task."""
    report = run_once(
        benchmark, run_figure11_assignment_time, answers_per_task_levels=(2, 3, 4, 5),
        seed=7, num_rows=40, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    seconds = [row[2] for row in report.rows]
    assert all(value > 0 for value in seconds)


def test_figure12a_em_convergence(benchmark, report_writer):
    """Regenerate Figure 12(a): EM objective value per iteration."""
    report = run_once(
        benchmark, run_figure12_convergence, seed=7, num_rows=80, max_iterations=20,
    )
    report_writer(report)
    values = [value for _iteration, value in report.series["objective"]]
    assert len(values) >= 3
    assert values[-1] >= values[0]


def test_figure12b_inference_runtime(benchmark, report_writer):
    """Regenerate Figure 12(b): inference runtime vs number of answers."""
    report = run_once(
        benchmark, run_figure12_runtime, answer_counts=(1_000, 3_000, 10_000), seed=7,
        model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    answers = [row[0] for row in report.rows]
    seconds = [row[2] for row in report.rows]
    assert answers == sorted(answers)
    # Runtime grows no worse than ~linearly with a generous constant: the
    # paper's complexity analysis is O(w v l |A|).
    ratio = (seconds[-1] / seconds[0]) / (answers[-1] / answers[0])
    assert ratio < 10.0


def test_engine_online_loop_speedup(benchmark, report_writer):
    """Engine vs seed path on the end-to-end online loop at refit_every=1.

    The exact engine path (incremental candidate indexes + vectorised batch
    gains) must replay the seed path's assignment sequence bit-for-bit while
    being substantially faster; the warm-start path is timed alongside.  The
    full-size baseline lives in BENCH_engine.json (benchmarks/run_bench.py).
    """
    stats = run_once(
        benchmark, measure_engine_speedup,
        seed=7, num_rows=20, target_answers_per_task=1.6,
        model_kwargs=FAST_MODEL,
    )
    report_writer(engine_speedup_report(stats))
    # The identity assert is empirical for this pinned (seed, size, numpy)
    # config: the batch and scalar gain paths agree to ~1e-9, far below any
    # gain gap observed here, but they are not guaranteed bit-identical.
    assert stats["identical_assignments"], (
        "exact engine path must take identical assignment decisions"
    )
    # Wall-clock gate kept loose: shared CI runners time both paths
    # sequentially and jitter; the real >=3x gate lives in run_bench.py.
    assert stats["speedup"] > 1.0
    assert 0.0 <= stats["warm_vs_cold_agreement"] <= 1.0
