"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (at a reduced
scale so the whole suite stays fast) and writes the resulting report text to
``benchmarks/_output/<experiment>.txt`` so the rows/series can be inspected
after a run.  Timing comes from pytest-benchmark; effectiveness numbers come
from the written reports and from EXPERIMENTS.md (full-scale runs).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

#: Reduced-but-representative model settings shared by the benchmarks.
FAST_MODEL = {"max_iterations": 10, "m_step_iterations": 15}


@pytest.fixture(scope="session")
def report_writer():
    """Return a callable that stores an ExperimentReport's text on disk."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(report) -> None:
        path = OUTPUT_DIR / f"{report.experiment_id}.txt"
        path.write_text(report.to_text() + "\n", encoding="utf-8")

    return write


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
