"""Crowd-serving service layer: HTTP API, durability, composed serving.

The engine packages give the online loop three fast serving paths
(incremental, sharded, async-refit); this package is the layer that serves
them to live workers instead of in-process simulation loops:

* :mod:`repro.service.wal` — a durable session: an append-only
  write-ahead answer log plus periodic engine-state snapshots, replayable to
  a **bit-identical** rebuild of the session (answers, incremental indexes
  and the warm-start EM chain).
* :mod:`repro.service.storage` — the pluggable storage backends under it:
  rotated JSONL segments or a single stdlib ``sqlite3`` database, both with
  snapshot retention / WAL GC so long-lived sessions stay disk-bounded.
* :mod:`repro.service.registry` — multi-tenant session registry with a
  per-session lock discipline, plus the JSON codecs for schemas and session
  configurations.
* :mod:`repro.service.app` — a stdlib-only WSGI application (no runtime
  dependencies beyond the scientific stack the engine already uses)
  exposing session creation, task routing, answer ingestion, estimates, a
  health probe and Prometheus-text metrics.
* :mod:`repro.service.bench` — the scripted drivers behind
  ``benchmarks/run_bench.py --serve``: HTTP serving throughput/latency and
  the crash-recovery equivalence check (``recovery_identical``).

Run a server with ``python -m repro.service --port 8080`` (see
``src/repro/service/README.md`` for the endpoint reference and the
durability/replay model).
"""

from repro.service.registry import ServedSession, SessionRegistry
from repro.service.storage import (
    JsonlBackend,
    SqliteBackend,
    StorageBackend,
    create_backend,
)
from repro.service.wal import DurableSession, SnapshotStore, WriteAheadLog

__all__ = [
    "DurableSession",
    "JsonlBackend",
    "ServedSession",
    "SessionRegistry",
    "SnapshotStore",
    "SqliteBackend",
    "StorageBackend",
    "WriteAheadLog",
    "create_backend",
]
