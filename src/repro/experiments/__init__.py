"""Experiment harnesses: one per table / figure of the paper's evaluation.

Every harness returns an :class:`~repro.experiments.reporting.ExperimentReport`
(or a small structured result) and can print the same rows / series the paper
reports.  The mapping from paper table/figure to harness is listed in
DESIGN.md §3; the command-line entry point is ``tcrowd-experiments``
(:mod:`repro.experiments.cli`).
"""

from repro.experiments.case_studies import (
    run_figure3_worker_consistency,
    run_figure4_quality_calibration,
    run_figure6_attribute_correlation,
)
from repro.experiments.efficiency import (
    measure_engine_speedup,
    run_engine_speedup,
    run_figure11_assignment_time,
    run_figure12_convergence,
    run_figure12_runtime,
)
from repro.experiments.end_to_end import run_figure2
from repro.experiments.heuristics import run_figure5
from repro.experiments.noise import run_figure10
from repro.experiments.reporting import ExperimentReport, format_table
from repro.experiments.synthetic import run_figure7, run_figure8, run_figure9
from repro.experiments.truth_inference import run_table7

__all__ = [
    "ExperimentReport",
    "format_table",
    "measure_engine_speedup",
    "run_engine_speedup",
    "run_figure2",
    "run_figure3_worker_consistency",
    "run_figure4_quality_calibration",
    "run_figure5",
    "run_figure6_attribute_correlation",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11_assignment_time",
    "run_figure12_convergence",
    "run_figure12_runtime",
    "run_table7",
]
