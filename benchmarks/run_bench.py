"""Entry point that records the engine's timing baseline to BENCH_engine.json.

Runs the end-to-end online assignment loop of ``measure_engine_speedup`` at
the Algorithm 2 cadence (``refit_every=1``) on the seed path (cold EM, scalar
gains, full candidate rescans) and on the engine paths (incremental indexes +
vectorised batch gains; warm-started EM; sharded candidate pool), then writes
the wall-clock numbers and the decision-equivalence checks as JSON.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_engine.json]

``--smoke`` shrinks the scenario so CI can exercise the full code path in a
few seconds; timed paths report best-of-N wall clock (``--repeats``,
default 5 at smoke size) because single sub-second samples are too noisy to
gate on.  The committed ``BENCH_engine.json`` is a smoke-tier run recorded
with ``--profile --scale``; the CI perf gate in
``scripts/check_perf_regression.py`` compares a fresh smoke run against it
with headroom for runner jitter, plus an absolute 1.5x floor on the
composed serving mode.

Recorded fields (see also ``benchmarks/README.md``):

* ``speedup`` / ``speedup_warm`` / ``speedup_sharded`` — seed-path seconds
  divided by the engine / warm-start / sharded path seconds.
* ``speedup_async`` (with ``--async-refit``) — *synchronous engine path*
  seconds divided by the bounded-staleness async path's seconds: selects
  serve background snapshots lock-free and warm refits stop early on the
  EM objective, so this is the async win on top of the engine's.
* ``identical_assignments`` / ``identical_assignments_sharded`` /
  ``identical_assignments_async`` / ``identical_assignments_sharded_async``
  — the exact engine path, the partitioned top-K path, the async path at
  ``max_stale_answers=0`` and the composed sharded+async path must replay
  the seed path's assignment sequence bit for bit; all are hard failures
  here and in CI.
* ``identical_assignments_multiprocess`` / ``speedup_multiprocess`` /
  ``multiprocess_answers_per_sec`` (with ``--processes N``) — the
  process-level serving path (``ProcessShardCoordinator``, N shard-group
  worker processes): its merged per-worker top-K sequence must also replay
  the seed path bit for bit (hard failure), and the timed production run
  records the multi-process throughput.
* ``repeats`` — the effective best-of-N repeat count the timed paths used,
  recorded so the CI gate can verify baseline and candidate measured with
  the same estimator.
* ``recovery_identical`` (with ``--serve``) — a durable session killed
  mid-run (write-ahead log with a torn tail) must recover and continue to
  the very same assignment sequence and final estimates as an
  uninterrupted run (see :mod:`repro.service.wal`).
* ``recovery_rotation_identical`` / ``recovery_rotation_disk_bounded``
  (with ``--serve``) — the same equivalence with WAL segment rotation and
  snapshot GC enabled, per storage backend (JSONL segments and SQLite),
  plus the bounded-disk guarantee: at most ``keep_snapshots`` snapshots
  and 2 log segments survive the run.
* ``serve_requests_per_sec`` / ``serve_select_p50_ms`` /
  ``serve_select_p99_ms`` (with ``--serve``) — HTTP serving throughput of
  one scripted session driven against a live ``repro.service`` server on
  an ephemeral port.
* ``audit_replay_identical`` (with ``--serve``) — a crashed audited
  session, recovered per storage backend, must re-derive every decision
  record from the WAL with hashes identical to the logged ledger (hard
  failure here and in CI; see :mod:`repro.engine.provenance`).
* ``audit_overhead_ratio`` (with ``--serve``) — relative wall-clock cost
  of decision recording on the scripted scenario; the CI gate floors it
  at < 10 %.
* ``identical_estimates_sharded_async`` — the composed equivalence run's
  *final truth estimates* must also match the seed path's exactly (both end
  with a cold fit over the same final answer set), not just the assignment
  sequence; hard failure in the CI perf gate.
* ``strategy_default_identical`` (with ``--strategies``) — pinning
  ``policy.strategy = "paper"`` explicitly must reproduce the default
  spec's assignment sequence, final estimates and decision-chain head bit
  for bit across **every** serving mode (hard failure; per-mode bits in
  ``strategy_default_identical_<mode>``).  ``strategy_curves`` records the
  answers-to-quality curves per strategy × scenario (clean / churn / spam /
  drift — see ``benchmarks/strategy_bench.py``), and
  ``strategy_paper_dominates_clean`` asserts the paper's gain-based
  selector beats the ``random`` and ``round_robin`` baselines on the clean
  scenario (hard failure here and in the CI perf gate).
* ``warm_vs_cold_agreement`` — fraction of *steps* where the warm-start
  path took the very same decision as the seed (cold-EM) path.  Warm starts
  perturb the EM trajectory, and most gain rankings are near-ties, so this
  number is small (~0.03 on the default scenario) without anything being
  wrong.  (The deprecated ``warm_agreement`` alias has been removed.)
* ``warm_truth_agreement`` — the context for the above: the fraction of
  cells whose inferred truths (posterior point estimates) match between the
  warm path's final fit and a cold EM fit on the same answers.  This is the
  number that should be high — the warm path lands on the same truths, it
  just breaks scoring ties differently along the way.
* ``profile_*`` (with ``--profile``) — a separate, untimed run of the
  composed production path with per-stage timers attached:
  ``profile_stages`` breaks the hot path into snapshot acquisition, lock
  wait, EM refit, calculator build, batch scoring and top-K merge (calls,
  seconds, max, mean and latency histogram buckets per stage),
  ``profile_top_functions`` lists the top cProfile entries by cumulative
  time, and ``profile_scoring_cache_hits``/``_misses`` report the
  snapshot-keyed calculator cache.  The profiling run is separate from the
  timed runs so its overhead never contaminates the recorded speedups.
* ``*_scale`` (with ``--scale``) — the scaled benchmark tier: a synthetic
  table of >= 10k rows and hundreds of workers driven through the sync
  engine, async and composed serving paths for a bounded number of steps
  (``speedup_async_scale`` / ``speedup_sharded_async_scale`` relative to
  the synchronous engine path, select p50/p99 latencies per path, and a
  cold-fit ``lbfgs``-vs-``newton`` M-step comparison in ``scale_m_step``).
  Non-gating: the scaled tier exists to catch regressions that a 60-row
  table cannot express (cache behaviour, per-shard overheads, EM cost at
  real answer counts).

Timing runs pin the BLAS/OpenMP thread pools to one thread (unless the
caller already exported a value) so recorded baselines do not depend on
the machine's core count; the effective values are recorded in the
payload's ``thread_env``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pathlib
import platform
import pstats
import sys
import time

# Pin the numeric thread pools *before* numpy/scipy load their BLAS — a
# benchmark that silently uses however many cores the runner has is not a
# baseline.  setdefault keeps an explicit caller override in force.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)
for _var in _THREAD_ENV_VARS:
    os.environ.setdefault(_var, "1")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import SessionSpec  # noqa: E402
from repro.experiments.efficiency import measure_engine_speedup  # noqa: E402


def spec_from_args(args, target: float) -> SessionSpec:
    """Fold the CLI flags into the canonical session spec.

    The benchmark no longer threads its own keyword arguments through
    ``measure_engine_speedup`` — it builds the same
    :class:`~repro.config.SessionSpec` document every other entry point
    consumes, and the resolved spec is recorded in the JSON baseline.
    Without ``--max-stale`` the timed async path keeps its historical
    default of two HITs' worth of staleness (the Celebrity schema's
    column count is fixed, whatever ``--rows`` says); ``--max-stale 0``
    explicitly times the blocking mode.
    """
    builder = (
        SessionSpec.builder()
        .model(max_iterations=10, m_step_iterations=15)
        .policy(refit_every=args.refit_every)
        .simulation(target_answers_per_task=target, seed=args.seed)
    )
    if args.shards and args.shards > 1:
        builder.sharded(args.shards, args.shard_workers or None)
    if args.async_refit:
        if args.max_stale is None:
            from repro.datasets import load_celebrity
            from repro.experiments.efficiency import default_max_stale

            stale = default_max_stale(
                load_celebrity(seed=args.seed, num_rows=2).schema
            )
        else:
            stale = args.max_stale
        # The timed async runs always used objective early stopping at the
        # 1e-3 default; pin it in the spec so the recorded document is the
        # exact configuration the run used.
        builder.async_refit(max_stale=stale, refit_tol=1e-3)
    return builder.build()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON baseline (default: repo root)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--target", type=float, default=2.0,
                        help="budget in answers per task")
    parser.add_argument("--refit-every", type=int, default=1)
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the partitioned path (0 or 1 disables it)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=0,
        help="scoring threads per select on the sharded path (0 = sequential)",
    )
    parser.add_argument(
        "--async-refit", action="store_true",
        help="also time the async-refit path and record the "
        "max_stale_answers=0 staleness-equivalence bit",
    )
    parser.add_argument(
        "--processes", type=int, default=0,
        help="worker processes for the process-level serving path "
        "(ProcessShardCoordinator; 0 disables it).  Records the "
        "identical_assignments_multiprocess equivalence bit and the "
        "multi-process throughput fields",
    )
    parser.add_argument(
        "--max-stale", type=int, default=None,
        help="staleness bound (answers) for the timed async path "
        "(default: two HITs' worth)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also run the HTTP serving benchmark and the WAL "
        "crash-recovery equivalence check (repro.service)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also run the composed hot path once under per-stage timers "
        "and cProfile, recording the breakdown as profile_* fields "
        "(separate from the timed runs)",
    )
    parser.add_argument(
        "--strategies", action="store_true",
        help="also run the strategy-zoo benchmark: the "
        "strategy_default_identical equivalence gate (strategy='paper' "
        "must reproduce the default bit for bit across every serving "
        "mode) and the answers-to-quality curves per strategy x scenario "
        "(paper must dominate the baselines on the clean scenario)",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the scaled benchmark tier (>= 10k synthetic rows, "
        "hundreds of workers) and record the *_scale fields (non-gating)",
    )
    parser.add_argument(
        "--scale-rows", type=int, default=10_000,
        help="row count for the --scale tier",
    )
    parser.add_argument(
        "--scale-steps", type=int, default=15,
        help="assignment steps per serving path in the --scale tier "
        "(each step is several worker polls followed by one answer batch)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenario for CI (not a baseline)")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N wall clock for every timed path (default: 5 at "
        "smoke size, where single sub-second samples are too noisy to "
        "gate on; 1 otherwise).  The effective value is recorded in the "
        "output JSON as 'repeats' so the CI gate can verify baseline and "
        "candidate used the same estimator",
    )
    args = parser.parse_args(argv)

    rows = 12 if args.smoke else args.rows
    target = 1.5 if args.smoke else args.target
    repeats = args.repeats if args.repeats is not None else (5 if args.smoke else 1)
    spec = spec_from_args(args, target)
    stats = measure_engine_speedup(
        spec=spec, num_rows=rows, timing_repeats=repeats,
        processes=args.processes if args.processes >= 1 else None,
    )
    if args.profile:
        from repro.experiments.efficiency import profile_hot_path

        profiler = cProfile.Profile()
        profiler.enable()
        profile_stats = profile_hot_path(
            seed=args.seed,
            num_rows=rows,
            target_answers_per_task=target,
            shards=args.shards if args.shards and args.shards > 1 else 4,
            shard_workers=args.shard_workers or None,
            max_stale_answers=args.max_stale,
        )
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(15)
        top_functions = [
            line.strip()
            for line in stream.getvalue().splitlines()
            if line.strip() and ("{" in line or "/" in line or ".py" in line)
        ][:15]
        stats.update(profile_stats)
        stats["profile_top_functions"] = top_functions
    if args.scale:
        from repro.experiments.efficiency import measure_scale_benchmark

        stats.update(
            measure_scale_benchmark(
                seed=args.seed,
                num_rows=args.scale_rows,
                max_steps=args.scale_steps,
                shards=args.shards if args.shards and args.shards > 1 else 8,
            )
        )
    if args.strategies:
        from strategy_bench import measure_strategy_bench

        stats.update(measure_strategy_bench(scenario={"seed": args.seed}))
    if args.serve:
        from repro.service.bench import (
            measure_audit_overhead,
            measure_serving,
            verify_audit_replay,
            verify_recovery_identical,
            verify_recovery_rotation,
        )

        # The scripted scenario's RNG seed follows --seed (recorded in the
        # payload as "seed" and inside each scripted spec's simulation
        # section), so a re-run with the same flags replays bit for bit.
        scripted_scenario = {"seed": args.seed}
        stats.update(
            verify_recovery_identical(
                mode="sharded_async" if args.async_refit else "plain",
                crash_after_steps=3,
                truncate_bytes=7,
                snapshot_every=25,
                scenario=scripted_scenario,
            )
        )
        # Recovery with segment rotation + snapshot GC on, per backend:
        # the bounded-disk layout must keep the same bit-identity bit.
        rotation_identical = True
        rotation_bounded = True
        for storage_backend in ("jsonl", "sqlite"):
            rotation = verify_recovery_rotation(
                mode="sharded", backend=storage_backend,
                scenario=scripted_scenario,
            )
            rotation_identical &= rotation["rotation_identical"]
            rotation_bounded &= rotation["rotation_disk_bounded"]
            stats.update(
                {
                    f"recovery_rotation_identical_{storage_backend}": rotation[
                        "rotation_identical"
                    ],
                    f"recovery_rotation_disk_bounded_{storage_backend}": rotation[
                        "rotation_disk_bounded"
                    ],
                    f"recovery_rotation_segments_{storage_backend}": rotation[
                        "rotation_wal_segments"
                    ],
                    f"recovery_rotation_snapshots_{storage_backend}": rotation[
                        "rotation_snapshots_retained"
                    ],
                }
            )
        stats["recovery_rotation_identical"] = bool(rotation_identical)
        stats["recovery_rotation_disk_bounded"] = bool(rotation_bounded)
        # Decision-audit ledger: crash an audited session per backend,
        # recover, and require the replayed decision records — ids, hashes,
        # chain head — to reproduce the pre-crash ledger bit for bit.
        audit_identical = True
        for storage_backend in ("jsonl", "sqlite"):
            audit = verify_audit_replay(
                mode="sharded_async" if args.async_refit else "plain",
                backend=storage_backend,
                scenario=scripted_scenario,
            )
            audit_identical &= audit["audit_replay_identical"]
            stats.update(
                {
                    f"audit_replay_identical_{storage_backend}": audit[
                        "audit_replay_identical"
                    ],
                    f"audit_replay_verified_{storage_backend}": audit[
                        "audit_replay_verified"
                    ],
                    f"audit_replay_mismatches_{storage_backend}": audit[
                        "audit_replay_mismatches"
                    ],
                }
            )
        stats["audit_replay_identical"] = bool(audit_identical)
        stats.update(measure_audit_overhead(scenario=scripted_scenario))
        stats.update(
            measure_serving(
                seed=args.seed,
                num_rows=12 if args.smoke else 24,
                target_answers_per_task=1.3 if args.smoke else 1.6,
                # Serve the same mode the engine benchmark timed (composed
                # when --shards/--async-refit are on) so /metrics exposes
                # the hot-path stage histograms over real HTTP traffic.
                serving=spec.to_dict()["serving"],
            )
        )
    payload = {
        "benchmark": "engine_online_loop",
        "smoke": bool(args.smoke),
        "seed": int(args.seed),
        "repeats": int(repeats),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "thread_env": {var: os.environ.get(var) for var in _THREAD_ENV_VARS},
        **stats,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(json.dumps(payload, indent=2))
    if not stats["identical_assignments"]:
        print("FAIL: exact engine path diverged from the seed path", file=sys.stderr)
        return 1
    if not stats.get("identical_assignments_sharded", True):
        print(
            "FAIL: sharded top-K path diverged from the seed path",
            file=sys.stderr,
        )
        return 1
    if not stats.get("identical_assignments_async", True):
        print(
            "FAIL: async path at max_stale_answers=0 diverged from the "
            "seed path",
            file=sys.stderr,
        )
        return 1
    if not stats.get("identical_assignments_sharded_async", True):
        print(
            "FAIL: composed sharded+async path at max_stale_answers=0 "
            "diverged from the seed path",
            file=sys.stderr,
        )
        return 1
    if not stats.get("identical_assignments_multiprocess", True):
        print(
            "FAIL: process-level serving path (--processes) diverged from "
            "the seed path",
            file=sys.stderr,
        )
        return 1
    if not stats.get("identical_estimates_sharded_async", True):
        print(
            "FAIL: composed sharded+async equivalence run's final truth "
            "estimates differ from the seed path's",
            file=sys.stderr,
        )
        return 1
    if not stats.get("recovery_identical", True):
        print(
            "FAIL: WAL+snapshot recovery did not reproduce the "
            "uninterrupted session bit for bit",
            file=sys.stderr,
        )
        return 1
    if not stats.get("recovery_rotation_identical", True):
        print(
            "FAIL: recovery with WAL segment rotation + snapshot GC "
            "diverged from the uninterrupted session",
            file=sys.stderr,
        )
        return 1
    if not stats.get("recovery_rotation_disk_bounded", True):
        print(
            "FAIL: rotation + GC left more than keep_snapshots snapshots "
            "or more than 2 WAL segments on disk",
            file=sys.stderr,
        )
        return 1
    if not stats.get("audit_replay_identical", True):
        print(
            "FAIL: decision audit replay did not reproduce the pre-crash "
            "ledger record for record (see audit_replay_mismatches_*)",
            file=sys.stderr,
        )
        return 1
    if not stats.get("strategy_default_identical", True):
        print(
            "FAIL: strategy='paper' did not reproduce the default "
            "assignment sequence / decision-chain head bit for bit "
            "(see strategy_default_identical_* per serving mode)",
            file=sys.stderr,
        )
        return 1
    if not stats.get("strategy_paper_dominates_clean", True):
        print(
            "FAIL: the paper strategy's mean error on the clean scenario "
            "exceeds a baseline's (random / round_robin) — the gain-based "
            "selector regressed",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and stats["speedup"] < 3.0:
        print(
            f"FAIL: exact-path speedup {stats['speedup']:.2f}x below the 3x target",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and "speedup_async" in stats and stats["speedup_async"] < 1.2:
        print(
            f"FAIL: async-path speedup {stats['speedup_async']:.2f}x over the "
            "synchronous engine path is below the 1.2x target",
            file=sys.stderr,
        )
        return 1
    # The hard 1.5x composed floor lives in check_perf_regression.py and is
    # enforced at the smoke tier (the serving-shaped workload the cache
    # targets); the full tier replays one select per answer step — every
    # select a cache miss — so it only carries the same absolute target as
    # the plain async path.
    if (
        not args.smoke
        and "speedup_sharded_async" in stats
        and stats["speedup_sharded_async"] < 1.2
    ):
        print(
            f"FAIL: composed sharded+async speedup "
            f"{stats['speedup_sharded_async']:.2f}x over the synchronous "
            "engine path is below the 1.2x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
