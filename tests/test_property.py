"""Property-based tests (hypothesis) for the engine's incremental indexes.

Two families of properties:

* ``merge_top_k_stable`` / ``top_k_stable`` against the naive sorted-merge
  oracle the seed implementation used — over arbitrary shard partitions,
  including empty shards, heavy ties and negative gains.
* ``SessionState`` / ``ShardedSessionState`` incremental indexes against a
  recompute-from-scratch oracle, over randomized answer streams with
  interleaved syncs — the O(1)-per-answer bookkeeping must never drift from
  what a full rescan of the answer set reports.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.assignment import merge_top_k_stable, top_k_stable
from repro.core.schema import Column, TableSchema
from repro.engine import SessionState, ShardedSessionState

# -- top-K selection vs the seed implementation's sort ------------------------

#: Gains drawn from a small pool of values so ties are the norm, not the
#: exception — tie-breaking by ascending candidate index is the property
#: under test.
_gain_values = st.sampled_from([-1.5, -0.25, 0.0, 0.25, 0.25, 1.0, 1.0, 3.5])
_gain_arrays = st.lists(_gain_values, min_size=0, max_size=12)
_partitions = st.lists(_gain_arrays, min_size=1, max_size=5)


def _oracle_top_k(gains: np.ndarray, k: int) -> list:
    """The seed path's ranking: stable descending sort, first k indexes."""
    ranked = sorted(
        range(len(gains)), key=lambda index: (-gains[index], index)
    )
    return ranked[:k]


class TestTopKProperties:
    @given(parts=_partitions, k=st.integers(min_value=1, max_value=15))
    @settings(max_examples=120, deadline=None)
    def test_merge_top_k_stable_matches_sorted_merge_oracle(self, parts, k):
        arrays = [np.asarray(part, dtype=float) for part in parts]
        concatenated = (
            np.concatenate(arrays) if arrays else np.zeros(0, dtype=float)
        )
        expected = _oracle_top_k(concatenated, k)
        merged = merge_top_k_stable(arrays, k)
        assert list(merged) == expected

    @given(gains=_gain_arrays.filter(len), k=st.integers(min_value=1, max_value=15))
    @settings(max_examples=120, deadline=None)
    def test_top_k_stable_matches_oracle(self, gains, k):
        array = np.asarray(gains, dtype=float)
        assert list(top_k_stable(array, k)) == _oracle_top_k(array, k)

    @given(parts=_partitions, k=st.integers(min_value=1, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_partition_invariant(self, parts, k):
        """Any shard partition of the same gains yields the same winners."""
        arrays = [np.asarray(part, dtype=float) for part in parts]
        concatenated = (
            np.concatenate(arrays) if arrays else np.zeros(0, dtype=float)
        )
        assert list(merge_top_k_stable(arrays, k)) == list(
            merge_top_k_stable([concatenated], k)
        )


# -- incremental session state vs recompute-from-scratch ----------------------

_NUM_ROWS = 5
_NUM_COLS = 3
_WORKERS = ("w0", "w1", "w2", "w3")


def _schema() -> TableSchema:
    columns = (
        Column.categorical("kind", ("a", "b")),
        Column.continuous("size", (0.0, 10.0)),
        Column.categorical("tone", ("x", "y", "z")),
    )
    return TableSchema.build("row", columns, num_rows=_NUM_ROWS)


#: One simulated answer: who answered which cell (values are irrelevant to
#: the indexes, so a fixed per-column value suffices).
_events = st.lists(
    st.tuples(
        st.sampled_from(_WORKERS),
        st.integers(min_value=0, max_value=_NUM_ROWS - 1),
        st.integers(min_value=0, max_value=_NUM_COLS - 1),
    ),
    min_size=0,
    max_size=40,
)


def _value_for(schema: TableSchema, col: int):
    column = schema.columns[col]
    return column.labels[0] if column.is_categorical else 1.0


def _scratch_counts(schema: TableSchema, answers: AnswerSet) -> np.ndarray:
    counts = np.zeros((schema.num_rows, schema.num_columns), dtype=np.int64)
    for answer in answers:
        counts[answer.row, answer.col] += 1
    return counts


def _scratch_candidates(schema, answers, worker, cap):
    counts = _scratch_counts(schema, answers)
    cells = []
    for row in range(schema.num_rows):
        for col in range(schema.num_columns):
            if cap is not None and counts[row, col] >= cap:
                continue
            if answers.has_answered(worker, row, col):
                continue
            cells.append((row, col))
    return cells


class TestSessionStateProperties:
    @given(events=_events, cap=st.sampled_from([None, 1, 2, 4]),
           sync_every=st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_incremental_indexes_match_scratch_recompute(
        self, events, cap, sync_every
    ):
        schema = _schema()
        answers = AnswerSet(schema)
        state = SessionState(schema, max_answers_per_cell=cap)
        for step, (worker, row, col) in enumerate(events):
            answers.add_answer(worker, row, col, _value_for(schema, col))
            if step % sync_every == 0:
                state.sync(answers)
        state.sync(answers)

        scratch = _scratch_counts(schema, answers)
        assert np.array_equal(state.counts, scratch)
        assert state.num_answers == len(answers)
        open_cells = (
            int(np.sum(scratch < cap)) if cap is not None else schema.num_cells
        )
        assert state.open_cell_count() == open_cells
        assert state.has_open_cells() == (open_cells > 0)
        for col in range(schema.num_columns):
            assert state.column_answer_count(col) == answers.column_answer_count(col)
        for worker in (*_WORKERS, "never-seen"):
            assert state.candidate_cells(worker) == _scratch_candidates(
                schema, answers, worker, cap
            )
            for row in range(schema.num_rows):
                for col in range(schema.num_columns):
                    assert state.has_answered(worker, row, col) == (
                        answers.has_answered(worker, row, col)
                    )

    @given(events=_events, cap=st.sampled_from([None, 1, 3]),
           num_shards=st.integers(min_value=1, max_value=_NUM_ROWS))
    @settings(max_examples=60, deadline=None)
    def test_sharded_state_matches_monolithic_state(self, events, cap, num_shards):
        schema = _schema()
        answers = AnswerSet(schema)
        sharded = ShardedSessionState(
            schema, num_shards=num_shards, max_answers_per_cell=cap
        )
        for worker, row, col in events:
            answers.add_answer(worker, row, col, _value_for(schema, col))
        sharded.sync(answers)

        scratch = _scratch_counts(schema, answers)
        assert np.array_equal(sharded.counts, scratch)
        # Per-shard open accounting sums to the global pool, and the
        # concatenated per-shard candidate lists are exactly the monolithic
        # row-major candidate list (the partitioned top-K precondition).
        assert (
            sum(sharded.shard_open_count(s) for s in range(sharded.num_shards))
            == sharded.open_cell_count()
        )
        for row in range(schema.num_rows):
            shard = sharded.shard_of_row(row)
            start, stop = sharded.shard_bounds(shard)
            assert start <= row < stop
        for worker in (*_WORKERS, "never-seen"):
            concatenated = [
                cell
                for shard in range(sharded.num_shards)
                for cell in sharded.shard_candidate_cells(shard, worker)
            ]
            assert concatenated == sharded.candidate_cells(worker)
            assert concatenated == _scratch_candidates(schema, answers, worker, cap)
