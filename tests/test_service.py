"""HTTP integration tests against a live server on an ephemeral port.

A real :class:`~repro.service.app.ServiceServer` (threaded wsgiref) is
started per test class; every request in here is a genuine HTTP round trip
through the stdlib client.  Covers the endpoint contract (404 for unknown
sessions/workers, 400 for malformed payloads, 409 for exhausted workers,
405 for wrong methods), concurrent workers against one session, the
Prometheus scrape, durable-session recovery across server restarts, and the
CLI entry point.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import SessionSpec
from repro.service.app import ServiceServer
from repro.service.bench import ServiceClient, measure_serving
from repro.service.registry import (
    SessionRegistry,
    build_policy,
    parse_config,
    resolve_schema,
    schema_from_dict,
    schema_to_dict,
)
from repro.utils.exceptions import ConfigurationError

SCHEMA_SPEC = {
    "entity_attribute": "item",
    "num_rows": 4,
    "columns": [
        {"name": "color", "type": "categorical", "labels": ["red", "green", "blue"]},
        {"name": "weight", "type": "continuous", "domain": [0.0, 100.0]},
    ],
}

FAST_MODEL = {"max_iterations": 3, "m_step_iterations": 6}


def _config(**overrides):
    config = {
        "schema": SCHEMA_SPEC,
        "policy": {"refit_every": 1, "model": dict(FAST_MODEL)},
    }
    config.update(overrides)
    return config


def _seed(client, session_id, rows=4, worker_prefix="seed"):
    for row in range(rows):
        client.post_answers(
            session_id,
            f"{worker_prefix}-{row % 2}",
            [(row, 0, "red"), (row, 1, 10.0 + row)],
        )


@pytest.fixture(scope="module")
def server():
    with ServiceServer() as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


class TestSchemaCodec:
    def test_round_trip(self, mixed_schema):
        rebuilt = schema_from_dict(schema_to_dict(mixed_schema))
        assert rebuilt == mixed_schema

    def test_malformed_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            schema_from_dict({"entity_attribute": "x", "columns": "nope"})
        with pytest.raises(ConfigurationError):
            schema_from_dict(
                {
                    "entity_attribute": "x",
                    "num_rows": 2,
                    "columns": [{"name": "a", "type": "ordinal"}],
                }
            )

    def test_resolve_schema_from_dataset(self):
        schema = resolve_schema(
            {"dataset": {"name": "celebrity", "seed": 1, "num_rows": 5}}
        )
        assert schema.num_rows == 5

    def test_resolve_schema_rejects_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            resolve_schema({"dataset": {"name": "imagenet"}})
        with pytest.raises(ConfigurationError):
            resolve_schema({})

    def test_build_policy_modes(self, mixed_schema):
        plain = build_policy(mixed_schema, {"policy": {"model": FAST_MODEL}})
        assert type(plain).__name__ == "TCrowdAssigner"
        sharded = build_policy(
            mixed_schema,
            {"policy": {"model": FAST_MODEL}, "serving": {"shards": 2}},
        )
        assert "sharded" in sharded.name
        sharded.close()
        composed = build_policy(
            mixed_schema,
            {
                "policy": {"model": FAST_MODEL},
                "serving": {"shards": 2, "async_refit": True},
            },
        )
        assert "sharded x2 + async refit" in composed.name
        composed.close()

    def test_build_policy_rejects_bad_options(self, mixed_schema):
        with pytest.raises(ConfigurationError):
            build_policy(mixed_schema, {"policy": {"bogus_knob": 1}})
        with pytest.raises(ConfigurationError):
            build_policy(mixed_schema, {"policy": {"model": {"bogus": 1}}})


class TestSessionLifecycle:
    def test_full_session_over_http(self, client):
        created = client.create_session(_config())
        session_id = created["session_id"]
        assert created["answers_collected"] == 0
        _seed(client, session_id)

        status, tasks = client.get_tasks(session_id, "worker-7", k=2)
        assert status == 200
        assert len(tasks["cells"]) == 2
        assert len(tasks["gains"]) == 2
        client.post_answers(
            session_id,
            "worker-7",
            [(row, col, "red" if col == 0 else 5.5) for row, col in tasks["cells"]],
        )

        estimates = client.get_estimates(session_id)
        assert len(estimates["estimates"]) == 8
        assert estimates["answers_collected"] == 10

        status, info = client.request(
            "GET", f"/sessions/{session_id}/workers/worker-7"
        )
        assert status == 200
        assert info["answers"] == 2
        assert info["quality"] is not None

        status, stats = client.request("GET", f"/sessions/{session_id}")
        assert status == 200
        assert stats["selects_served"] == 1
        assert stats["answers_ingested"] == 10
        assert session_id in client._expect("GET", "/sessions")["sessions"]

        closed = client.delete_session(session_id)
        assert closed == {"closed": session_id}
        status, _ = client.request("GET", f"/sessions/{session_id}")
        assert status == 404

    def test_session_from_named_dataset(self, client):
        created = client.create_session(
            {
                "dataset": {"name": "celebrity", "seed": 3, "num_rows": 4},
                "policy": {"model": dict(FAST_MODEL)},
                "serving": {"shards": 2},
            }
        )
        assert created["num_rows"] == 4
        assert "sharded" in created["policy"]
        client.delete_session(created["session_id"])

    def test_v1_spec_body_and_config_endpoint(self, client):
        """POST a canonical v1 spec; GET /config must serve it back."""
        spec = (
            SessionSpec.builder()
            .model(**FAST_MODEL)
            .policy(refit_every=1)
            .sharded(2)
            .async_refit(max_stale=0)
            .build()
        )
        created = client.create_session({"schema": SCHEMA_SPEC, **spec.to_dict()})
        session_id = created["session_id"]
        assert "sharded x2 + async refit" in created["policy"]

        status, config = client.request(
            "GET", f"/sessions/{session_id}/config"
        )
        assert status == 200
        assert config["session_id"] == session_id
        assert config["version"] == 1
        assert schema_from_dict(config["schema"]) == schema_from_dict(SCHEMA_SPEC)
        served_spec = SessionSpec.from_dict(
            {k: v for k, v in config.items() if k not in ("schema", "session_id")}
        )
        assert served_spec == spec
        # A spec body round-trips: re-posting the served config under a new
        # id must build the same serving mode.
        twin = client.create_session({**config, "session_id": "twin-config"})
        assert twin["policy"] == created["policy"]
        client.delete_session("twin-config")
        client.delete_session(session_id)

    def test_legacy_config_upgrades_to_canonical_spec(self, client):
        """The PR-4 dialect still creates; /config serves the v1 upgrade."""
        created = client.create_session(
            {
                "schema": SCHEMA_SPEC,
                "policy": {"refit_every": 1, "refit_tol": 1e-3,
                           "model": dict(FAST_MODEL)},
                "serving": {"shards": None, "async_refit": True,
                            "max_stale_answers": 7},
                "snapshot_every": 50,
            }
        )
        session_id = created["session_id"]
        status, config = client.request("GET", f"/sessions/{session_id}/config")
        assert status == 200
        assert config["version"] == 1
        assert config["serving"]["shards"] == 1
        assert config["serving"]["max_stale_answers"] == 7
        assert config["serving"]["refit_tol"] == 1e-3
        assert config["durability"]["snapshot_every_answers"] == 50
        client.delete_session(session_id)

    def test_config_endpoint_is_get_only_and_404s(self, client):
        assert client.request("GET", "/sessions/nope/config")[0] == 404
        session_id = client.create_session(_config())["session_id"]
        assert (
            client.request("POST", f"/sessions/{session_id}/config", {"x": 1})[0]
            == 405
        )
        client.delete_session(session_id)

    def test_worker_exhaustion_maps_to_409(self, client):
        config = _config()
        config["policy"]["max_answers_per_cell"] = 1
        session_id = client.create_session(config)["session_id"]
        for row in range(4):
            client.post_answers(
                session_id, "the-crowd", [(row, 0, "red"), (row, 1, 1.0)]
            )
        status, body = client.get_tasks(session_id, "anyone", k=1)
        assert status == 409
        assert "error" in body
        client.delete_session(session_id)


class TestErrorContract:
    def test_unknown_session_is_404(self, client):
        for method, path, payload in [
            ("GET", "/sessions/nope", None),
            ("GET", "/sessions/nope/tasks?worker=w", None),
            ("GET", "/sessions/nope/estimates", None),
            ("POST", "/sessions/nope/answers",
             {"worker": "w", "answers": [{"row": 0, "col": 0, "value": "red"}]}),
            ("DELETE", "/sessions/nope", None),
        ]:
            status, body = client.request(method, path, payload)
            assert status == 404, (method, path, status, body)

    def test_unknown_worker_is_404(self, client):
        session_id = client.create_session(_config())["session_id"]
        _seed(client, session_id)
        status, body = client.request(
            "GET", f"/sessions/{session_id}/workers/never-answered"
        )
        assert status == 404
        assert "error" in body
        client.delete_session(session_id)

    def test_unknown_path_is_404(self, client):
        assert client.request("GET", "/frobnicate")[0] == 404
        assert client.request("GET", "/sessions/x/zap")[0] == 404

    def test_malformed_bodies_are_400(self, client):
        session_id = client.create_session(_config())["session_id"]
        cases = [
            ("POST", "/sessions", None),  # missing body
            ("POST", f"/sessions/{session_id}/answers", ["not", "an", "object"]),
            ("POST", f"/sessions/{session_id}/answers", {"worker": ""}),
            ("POST", f"/sessions/{session_id}/answers",
             {"worker": "w", "answers": []}),
            ("POST", f"/sessions/{session_id}/answers",
             {"worker": "w", "answers": ["nope"]}),
            ("POST", f"/sessions/{session_id}/answers",
             {"worker": "w", "answers": [{"row": 0}]}),
            # invalid label and out-of-range cell
            ("POST", f"/sessions/{session_id}/answers",
             {"worker": "w", "answers": [{"row": 0, "col": 0, "value": "mauve"}]}),
            ("POST", f"/sessions/{session_id}/answers",
             {"worker": "w", "answers": [{"row": 99, "col": 0, "value": "red"}]}),
        ]
        for method, path, payload in cases:
            status, body = client.request(method, path, payload)
            assert status == 400, (path, payload, status, body)
        # raw non-JSON body
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            client.base_url + f"/sessions/{session_id}/answers",
            data=b"{broken",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        client.delete_session(session_id)

    def test_tasks_query_validation(self, client):
        session_id = client.create_session(_config())["session_id"]
        _seed(client, session_id)
        assert client.request("GET", f"/sessions/{session_id}/tasks")[0] == 400
        assert (
            client.request(
                "GET", f"/sessions/{session_id}/tasks?worker=w&k=zero"
            )[0]
            == 400
        )
        assert (
            client.request("GET", f"/sessions/{session_id}/tasks?worker=w&k=0")[0]
            == 400
        )
        client.delete_session(session_id)

    def test_bad_config_is_400(self, client):
        status, body = client.request("POST", "/sessions", {"schema": {"x": 1}})
        assert status == 400
        status, _ = client.request("POST", "/sessions", {})
        assert status == 400
        status, _ = client.request(
            "POST", "/sessions", _config(durable=True)
        )
        assert status == 400  # server has no --durable-root

    def test_invalid_spec_400_carries_the_validation_path(self, client):
        cases = [
            ({"version": 1, "schema": SCHEMA_SPEC,
              "serving": {"max_stale_answers": -1}},
             "serving.max_stale_answers"),
            ({"version": 1, "schema": SCHEMA_SPEC, "serving": {"shards": 0}},
             "serving.shards"),
            ({"version": 1, "schema": SCHEMA_SPEC,
              "policy": {"bogus_knob": 1}},
             "policy.bogus_knob"),
            ({"version": 2, "schema": SCHEMA_SPEC}, "version"),
        ]
        for payload, path in cases:
            status, body = client.request("POST", "/sessions", payload)
            assert status == 400, (payload, status, body)
            assert body["path"] == path, body
            assert body["error"].startswith(path), body

    def test_wrong_method_is_405(self, client):
        assert client.request("POST", "/healthz", {"x": 1})[0] == 405
        assert client.request("PUT", "/sessions", {"x": 1})[0] == 405
        session_id = client.create_session(_config())["session_id"]
        assert client.request("POST", f"/sessions/{session_id}", {"x": 1})[0] == 405
        client.delete_session(session_id)


class TestObservability:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert isinstance(health["sessions"], int)

    def test_metrics_scrape(self, client):
        session_id = client.create_session(_config())["session_id"]
        _seed(client, session_id)
        client.get_tasks(session_id, "scraper", k=1)
        text = client.get_metrics()
        assert "repro_service_sessions_active" in text
        assert 'repro_service_requests_total{endpoint="tasks"}' in text
        assert "repro_service_answers_ingested_total" in text
        assert 'repro_service_select_latency_seconds{quantile="0.5"}' in text
        assert "repro_service_select_latency_seconds_count" in text
        client.delete_session(session_id)
        # 404s show up as error counters
        client.request("GET", "/sessions/nope")
        assert 'repro_service_http_errors_total{status="404"}' in client.get_metrics()


class TestConcurrency:
    def test_concurrent_workers_share_one_session(self, client):
        session_id = client.create_session(_config())["session_id"]
        _seed(client, session_id)
        errors = []
        accepted = []

        def crowd_worker(name):
            try:
                for _ in range(3):
                    status, body = client.get_tasks(session_id, name, k=1)
                    if status == 409:
                        return  # exhausted for this worker — valid outcome
                    assert status == 200, (status, body)
                    (row, col), = body["cells"]
                    client.post_answers(
                        session_id,
                        name,
                        [(row, col, "green" if col == 0 else 42.0)],
                    )
                    accepted.append(1)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=crowd_worker, args=(f"crowd-{i}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        status, stats = client.request("GET", f"/sessions/{session_id}")
        assert status == 200
        # Every accepted answer is accounted for exactly once.
        assert stats["answers_collected"] == 8 + len(accepted)
        client.delete_session(session_id)


class TestDurableSessionsOverHTTP:
    def test_recovery_across_server_restart(self, tmp_path):
        durable_dir = tmp_path / "session-a"
        with ServiceServer() as first:
            client = ServiceClient(first.address)
            created = client.create_session(
                _config(durable_dir=str(durable_dir), snapshot_every=4)
            )
            session_id = created["session_id"]
            _seed(client, session_id)
            status, tasks = client.get_tasks(session_id, "worker-z", k=2)
            assert status == 200
            client.post_answers(
                session_id,
                "worker-z",
                [
                    (row, col, "blue" if col == 0 else 7.0)
                    for row, col in tasks["cells"]
                ],
            )
            before = client.get_estimates(session_id)
        # server gone; a brand-new process recovers the session from disk
        with ServiceServer() as second:
            client = ServiceClient(second.address)
            recovered = client.create_session({"durable_dir": str(durable_dir)})
            assert recovered["session_id"] == session_id
            assert recovered["answers_collected"] == before["answers_collected"]
            after = client.get_estimates(session_id)
            assert after["estimates"] == before["estimates"]

    def test_registry_recover_all(self, tmp_path):
        registry = SessionRegistry(durable_root=tmp_path)
        with ServiceServer(registry) as server:
            client = ServiceClient(server.address)
            session_id = client.create_session(_config(durable=True))["session_id"]
            _seed(client, session_id)
        fresh = SessionRegistry(durable_root=tmp_path)
        assert fresh.recover_all() == [session_id]
        assert len(fresh.get(session_id).durable.answers) == 8
        fresh.close_all()

    def test_recover_all_skips_corrupt_directories(self, tmp_path, caplog):
        registry = SessionRegistry(durable_root=tmp_path)
        with ServiceServer(registry) as server:
            client = ServiceClient(server.address)
            session_id = client.create_session(_config(durable=True))["session_id"]
            _seed(client, session_id)
        corrupt = tmp_path / "corrupt-session"
        corrupt.mkdir()
        (corrupt / "session.json").write_text("{broken", encoding="utf-8")
        fresh = SessionRegistry(durable_root=tmp_path)
        with caplog.at_level("WARNING", logger="repro.service.registry"):
            assert fresh.recover_all() == [session_id]
        assert "skipping unrecoverable" in caplog.text
        fresh.close_all()

    def test_manifest_pins_the_canonical_spec(self, tmp_path):
        import json as json_module

        durable_dir = tmp_path / "pinned"
        registry = SessionRegistry()
        session = registry.create(
            {
                "version": 1,
                "schema": SCHEMA_SPEC,
                "policy": {"model": dict(FAST_MODEL)},
                "serving": {"shards": 2},
                "durability": {"durable_dir": str(durable_dir),
                               "snapshot_every_answers": 10},
            }
        )
        manifest = json_module.loads(
            (durable_dir / "session.json").read_text(encoding="utf-8")
        )
        assert manifest["format"] == 2
        spec = SessionSpec.from_dict(manifest["spec"])
        assert spec.serving.shards == 2
        assert spec.durability.durable_dir == str(durable_dir)
        assert session.config_payload()["serving"]["shards"] == 2
        registry.close_all()
        # Recovery rebuilds the identical spec from the manifest alone.
        fresh = SessionRegistry()
        recovered = fresh.create({"durable_dir": str(durable_dir)})
        assert recovered.spec == spec
        fresh.close_all()

    def test_format1_manifest_recovers_through_the_upgrade_shim(self, tmp_path):
        import json as json_module

        durable_dir = tmp_path / "old-format"
        registry = SessionRegistry()
        session = registry.create(
            _config(durable_dir=str(durable_dir), snapshot_every=10)
        )
        session_id = session.session_id
        registry.close_all()
        # Rewrite the manifest the way PR 4 wrote it: legacy config dialect.
        manifest_path = durable_dir / "session.json"
        manifest = json_module.loads(manifest_path.read_text(encoding="utf-8"))
        legacy_manifest = {
            "format": 1,
            "session_id": session_id,
            "schema": manifest["schema"],
            "config": {
                "policy": {"refit_every": 1, "model": dict(FAST_MODEL)},
                "snapshot_every": 10,
            },
        }
        manifest_path.write_text(
            json_module.dumps(legacy_manifest), encoding="utf-8"
        )
        fresh = SessionRegistry()
        recovered = fresh.create({"durable_dir": str(durable_dir)})
        assert recovered.session_id == session_id
        assert recovered.spec.durability.snapshot_every_answers == 10
        assert recovered.spec.policy.refit_every == 1
        fresh.close_all()

    def test_parse_config_dialect_detection(self):
        envelope, spec = parse_config(
            {"version": 1, "schema": SCHEMA_SPEC, "serving": {"shards": 3}}
        )
        assert envelope == {"schema": SCHEMA_SPEC}
        assert spec.serving.shards == 3
        envelope, spec = parse_config(
            {"schema": SCHEMA_SPEC, "serving": {"shards": 3},
             "snapshot_every": 9}
        )
        assert spec.serving.shards == 3
        assert spec.durability.snapshot_every_answers == 9

    def test_duplicate_session_id_rejected(self, tmp_path):
        registry = SessionRegistry()
        session = registry.create(_config(session_id="twin"))
        assert session.session_id == "twin"
        with pytest.raises(ConfigurationError):
            registry.create(_config(session_id="twin"))
        registry.close_all()


class TestServingBenchmarkAndCLI:
    def test_measure_serving_smoke(self):
        stats = measure_serving(num_rows=6, target_answers_per_task=1.2)
        assert stats["serve_requests_per_sec"] > 0
        assert stats["serve_select_p99_ms"] >= stats["serve_select_p50_ms"] >= 0
        assert stats["serve_metrics_scraped"]

    def test_cli_build_server(self, tmp_path):
        from repro.service.__main__ import build_server

        server = build_server(
            ["--port", "0", "--durable-root", str(tmp_path)]
        ).start()
        try:
            client = ServiceClient(server.address)
            assert client.healthz()["status"] == "ok"
            session_id = client.create_session(_config(durable=True))["session_id"]
            assert (tmp_path / session_id / "session.json").exists()
        finally:
            server.close()
        # a second CLI boot recovers the durable session
        server = build_server(["--port", "0", "--durable-root", str(tmp_path)])
        try:
            assert session_id in server.registry.ids()
        finally:
            server.close()

    def test_cli_main_clean_shutdown(self, monkeypatch, capsys):
        import repro.service.__main__ as cli

        def interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli.ServiceServer, "serve_forever", interrupted)
        assert cli.main(["--port", "0"]) == 0
        out = capsys.readouterr().out
        assert "listening on http://" in out
        assert "shut down cleanly" in out


class TestIngestionValidationAndLimits:
    """PR-8 fixes: entry-indexed 400s, the body cap, durability stats."""

    def test_answers_validation_names_the_entry(self, client):
        session_id = client.create_session(_config())["session_id"]
        cases = [
            # bool is an int subclass — it must still be rejected
            ({"worker": "w", "answers": [{"row": True, "col": 0, "value": "red"}]},
             "answers[0].row"),
            ({"worker": "w", "answers": [{"row": 0, "col": "0", "value": "red"}]},
             "answers[0].col"),
            ({"worker": "w", "answers": [
                {"row": 0, "col": 0, "value": "red"},
                {"row": 1.5, "col": 0, "value": "red"},
            ]}, "answers[1].row"),
            ({"worker": "w", "answers": [
                {"row": 0, "col": 0, "value": "red"}, "nope",
            ]}, "answers[1]"),
            ({"worker": "w", "answers": [{"col": 0, "value": "red"}]},
             "answers[0]"),
        ]
        for payload, needle in cases:
            status, body = client.request(
                "POST", f"/sessions/{session_id}/answers", payload
            )
            assert status == 400, (payload, status, body)
            assert needle in body["error"], (needle, body)
        client.delete_session(session_id)

    def test_oversized_body_is_413(self):
        with ServiceServer(max_body_bytes=512) as server:
            small = ServiceClient(server.address)
            status, body = small.request(
                "POST", "/sessions", {"schema": SCHEMA_SPEC, "pad": "x" * 2048}
            )
            assert status == 413, (status, body)
            assert "exceeds" in body["error"], body
            # A body under the cap still works on the same server.
            session_id = small.create_session(_config())["session_id"]
            small.delete_session(session_id)

    def test_truncated_body_is_400_not_a_hang(self):
        import socket

        with ServiceServer() as server:
            host, port = server.address.removeprefix("http://").rsplit(":", 1)
            payload = b'{"worker": "w"'
            request = (
                "POST /sessions HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload) + 9}\r\n\r\n"
            ).encode("ascii") + payload
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.sendall(request)
                sock.shutdown(socket.SHUT_WR)  # body ends short of the header
                response = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line, response[:200]
        assert b"Truncated request body" in response, response[:500]

    def test_durable_stats_and_metrics_expose_rotation(self, tmp_path):
        registry = SessionRegistry(durable_root=tmp_path)
        with ServiceServer(registry) as server:
            api = ServiceClient(server.address)
            spec = (
                SessionSpec.builder()
                .model(**FAST_MODEL)
                .policy(refit_every=1)
                .durable(
                    None,
                    snapshot_every_answers=4,
                    backend="sqlite",
                    rotate_every_records=4,
                    keep_snapshots=2,
                )
                .build()
            )
            created = api.create_session(
                {"schema": SCHEMA_SPEC, "durable": True, **spec.to_dict()}
            )
            session_id = created["session_id"]
            _seed(api, session_id)
            status, stats = api.request("GET", f"/sessions/{session_id}")
            assert status == 200, (status, stats)
            assert stats["durability_backend"] == "sqlite"
            assert stats["wal_segments"] == 1  # sqlite: always one file
            assert stats["snapshots_retained"] >= 1
            assert stats["wal_records"] >= 4
            text = api.get_metrics()
            assert "repro_service_wal_segments 1" in text
            assert "repro_service_snapshots_retained" in text
            api.delete_session(session_id)

    def test_cli_durable_backend_and_body_cap_flags(self, tmp_path):
        from repro.service.__main__ import build_server

        server = build_server(
            [
                "--port", "0",
                "--durable-root", str(tmp_path),
                "--durable-backend", "sqlite",
                "--max-body-bytes", "600",
            ]
        ).start()
        try:
            api = ServiceClient(server.address)
            session_id = api.create_session(_config(durable=True))["session_id"]
            status, stats = api.request("GET", f"/sessions/{session_id}")
            assert status == 200 and stats["durability_backend"] == "sqlite"
            assert (tmp_path / session_id / "durable.sqlite3").exists()
            status, body = api.request(
                "POST", "/sessions", {"schema": SCHEMA_SPEC, "pad": "x" * 2048}
            )
            assert status == 413, (status, body)
        finally:
            server.close()
        # A restart without --durable-backend keeps the manifest's backend.
        server = build_server(["--port", "0", "--durable-root", str(tmp_path)])
        try:
            assert session_id in server.registry.ids()
            assert (
                server.registry.get(session_id).durable.backend_name == "sqlite"
            )
        finally:
            server.close()

    def test_explicit_spec_backend_beats_the_cli_default(self, tmp_path):
        registry = SessionRegistry(durable_root=tmp_path, durable_backend="sqlite")
        with ServiceServer(registry) as server:
            api = ServiceClient(server.address)
            spec = (
                SessionSpec.builder()
                .model(**FAST_MODEL)
                .durable(None, backend="jsonl")
                .build()
            )
            created = api.create_session(
                {"schema": SCHEMA_SPEC, "durable": True, **spec.to_dict()}
            )
            assert created["durability_backend"] == "jsonl"
            assert (tmp_path / created["session_id"] / "wal.jsonl").exists()
            api.delete_session(created["session_id"])
