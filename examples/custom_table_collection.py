"""Collecting a brand-new table with a simulated crowd (product catalogue).

Shows how to use the library for a table that is *not* one of the paper's
datasets: define a schema, provide (or in production: withhold) the ground
truth, simulate a worker pool, and run budget-aware collection with T-Crowd's
assignment and inference.  This is the workflow a requester (e.g. an
e-commerce catalogue team) would follow.

Run with::

    python examples/custom_table_collection.py
"""

import numpy as np

from repro import TCrowdAssigner, TCrowdModel
from repro.core.schema import Column, TableSchema
from repro.datasets import WorkerPool
from repro.datasets.synthetic import build_dataset
from repro.metrics import error_rate, mnad
from repro.platform import CrowdsourcingSession

CATEGORIES = ("electronics", "clothing", "grocery", "toys", "sports")
BRANDS = ("Acme", "Globex", "Initech", "Umbrella", "Soylent", "Hooli")


def build_catalogue_schema(num_products: int) -> TableSchema:
    """Product catalogue: two categorical and two continuous attributes."""
    columns = (
        Column.categorical("category", CATEGORIES),
        Column.categorical("brand", BRANDS),
        Column.continuous("price", (1.0, 500.0)),
        Column.continuous("weight_kg", (0.05, 30.0)),
    )
    return TableSchema.build("product", columns, num_products)


def build_catalogue_truth(schema: TableSchema, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    truth = {}
    for i in range(schema.num_rows):
        truth[(i, 0)] = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
        truth[(i, 1)] = BRANDS[int(rng.integers(len(BRANDS)))]
        truth[(i, 2)] = float(np.round(rng.uniform(5.0, 400.0), 2))
        truth[(i, 3)] = float(np.round(rng.uniform(0.2, 25.0), 2))
    return truth


def main() -> None:
    seed = 42
    schema = build_catalogue_schema(num_products=25)
    truth = build_catalogue_truth(schema, seed)
    pool = WorkerPool.generate(30, seed=seed, median_variance=0.7, spammer_fraction=0.1)

    # Initial collection: one answer per task (Algorithm 2, line 1).
    dataset = build_dataset(
        name="ProductCatalogue",
        schema=schema,
        ground_truth=truth,
        pool=pool,
        answers_per_task=1,
        seed=seed,
        row_confusion_probability=0.1,
        row_shift_sigma=0.4,
        noise_fraction=0.8,
        bias_fraction=0.15,
    )
    print("Initial collection:", dataset.summary())

    model = TCrowdModel(max_iterations=15)
    initial = model.fit(dataset.schema, dataset.answers)
    print(f"  error rate after 1 answer/task: {error_rate(initial, dataset):.3f}")
    print(f"  MNAD after 1 answer/task:       {mnad(initial, dataset):.3f}")

    # Adaptive collection up to 4 answers per task.
    policy = TCrowdAssigner(
        schema, model=model, use_structure=True, refit_every=schema.num_columns
    )
    session = CrowdsourcingSession(
        dataset, policy, model,
        target_answers_per_task=4.0,
        initial_answers_per_task=1,
        eval_every_answers_per_task=1.0,
        seed=seed,
    )
    trace = session.run()
    print("\nAdaptive collection with structure-aware information gain:")
    for record in trace.records:
        print(
            f"  answers/task={record.answers_per_task:4.2f}  "
            f"error rate={record.error_rate:.3f}  MNAD={record.mnad:.3f}  "
            f"spent=${record.spent_money:.2f}"
        )

    final = trace.final
    print(
        f"\nFinal catalogue quality: error rate {final.error_rate:.3f}, "
        f"MNAD {final.mnad:.3f} after {final.answers_per_task:.1f} answers per task."
    )


if __name__ == "__main__":
    main()
