"""Simulated Emotion dataset (Table 6 of the paper).

The original Emotion dataset (Snow et al., EMNLP 2008) asks workers to score
a short text on six emotions in [0, 100] and an overall valence in
[-100, 100]; 100 texts, 7 continuous attributes, 10 answers per task.
:func:`load_emotion` synthesises a dataset with the same shape and answer
redundancy and a medium-quality crowd (the paper reports MNAD around 0.6-0.7
for the best methods).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.schema import Column, TableSchema
from repro.datasets.base import CrowdDataset
from repro.datasets.synthetic import build_dataset
from repro.datasets.workers import WorkerPool
from repro.utils.rng import as_generator

#: Table 6 statistics.
NUM_ROWS = 100
ANSWERS_PER_TASK = 10
NUM_WORKERS = 38

_EMOTIONS = ("anger", "disgust", "fear", "joy", "sadness", "surprise")


def emotion_schema(num_rows: int = NUM_ROWS) -> TableSchema:
    """Schema of the Emotion table (7 continuous columns)."""
    columns = tuple(
        Column.continuous(emotion, (0.0, 100.0)) for emotion in _EMOTIONS
    ) + (Column.continuous("valence", (-100.0, 100.0)),)
    return TableSchema.build("text", columns, num_rows)


def load_emotion(
    seed=13,
    answers_per_task: int = ANSWERS_PER_TASK,
    num_workers: int = NUM_WORKERS,
    num_rows: int = NUM_ROWS,
) -> CrowdDataset:
    """Build the simulated Emotion dataset (100 x 7 cells, 10 answers/task).

    ``num_rows`` can be reduced for quick experiment / test runs.
    """
    rng = as_generator(seed)
    schema = emotion_schema(num_rows)
    ground_truth: Dict[Tuple[int, int], object] = {}
    valence_col = schema.column_index("valence")
    for i in range(schema.num_rows):
        # Emotion intensities are skewed toward low values (most texts carry
        # little of each emotion), as in the original headline data.
        intensities = rng.beta(1.2, 3.5, size=len(_EMOTIONS)) * 100.0
        for j, value in enumerate(intensities):
            ground_truth[(i, j)] = float(value)
        positive = float(intensities[_EMOTIONS.index("joy")])
        negative = float(
            intensities[_EMOTIONS.index("anger")]
            + intensities[_EMOTIONS.index("sadness")]
        ) / 2.0
        ground_truth[(i, valence_col)] = float(
            max(-100.0, min(100.0, positive - negative + rng.normal(0.0, 10.0)))
        )
    pool = WorkerPool.generate(
        num_workers,
        seed=rng,
        median_variance=0.8,
        variance_spread=1.1,
        spammer_fraction=0.1,
        spammer_contamination=0.6,
        base_contamination=0.02,
    )
    return build_dataset(
        name="Emotion",
        schema=schema,
        ground_truth=ground_truth,
        pool=pool,
        answers_per_task=answers_per_task,
        seed=rng,
        average_difficulty=1.0,
        difficulty_sigma=0.3,
        row_familiarity_sigma=0.3,
        row_confusion_probability=0.05,
        row_confusion_multiplier=4.0,
        row_shift_sigma=0.5,
        noise_fraction=1.3,
        metadata={"kind": "simulated-real", "paper_table": "Table 6"},
    )
