"""Noise injection of Section 6.5.2.

``add_noise`` perturbs a fraction ``gamma`` of the already-collected answers:
categorical answers are replaced by a random label from the column's domain;
continuous answers are z-scored (using the column's answer statistics),
shifted by standard Gaussian noise, and mapped back to the original scale.
Answers to perturb are drawn *with replacement*, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.answers import Answer, AnswerSet
from repro.datasets.base import CrowdDataset
from repro.utils.rng import as_generator
from repro.utils.validation import require_in_range


def add_noise(dataset: CrowdDataset, gamma: float, seed=None) -> CrowdDataset:
    """Return a copy of ``dataset`` with noise added to a ``gamma`` fraction of answers.

    The number of perturbed answers is ``round(gamma * N * M)`` positions
    drawn with replacement from the answer list (so the effective fraction of
    *distinct* perturbed answers is slightly below ``gamma``, as in the
    paper's protocol).
    """
    require_in_range(gamma, 0.0, 1.0, "gamma")
    rng = as_generator(seed)
    schema = dataset.schema
    answers = list(dataset.answers)
    if not answers:
        return dataset.with_answers(AnswerSet(schema), name_suffix="+noise")

    # Column-wise answer statistics for the z-score transform.
    column_stats: Dict[int, tuple] = {}
    for j in schema.continuous_indices:
        values = np.array(
            [float(a.value) for a in answers if a.col == j], dtype=float
        )
        if len(values) == 0:
            column_stats[j] = (0.0, 1.0)
            continue
        std = float(np.std(values))
        column_stats[j] = (float(np.mean(values)), std if std > 1e-9 else 1.0)

    num_to_perturb = int(round(gamma * schema.num_cells))
    chosen = rng.integers(0, len(answers), size=num_to_perturb)
    perturbed = {int(index) for index in chosen}

    noisy: list = []
    for index, answer in enumerate(answers):
        if index not in perturbed:
            noisy.append(answer)
            continue
        column = schema.columns[answer.col]
        if column.is_categorical:
            new_value = column.labels[int(rng.integers(column.num_labels))]
        else:
            mean, std = column_stats[answer.col]
            z_score = (float(answer.value) - mean) / std
            new_value = (z_score + float(rng.normal(0.0, 1.0))) * std + mean
            if column.domain:
                low, high = column.domain
                new_value = float(np.clip(new_value, low, high))
        noisy.append(Answer(answer.worker, answer.row, answer.col, new_value))

    noisy_set = AnswerSet(schema, noisy)
    result = dataset.with_answers(noisy_set, name_suffix=f"+noise({gamma:.0%})")
    result.metadata["noise_gamma"] = gamma
    return result
