"""Tests for online task assignment (repro.core.assignment)."""

import pytest

from repro.core.assignment import BatchAssignment, TCrowdAssigner
from repro.core.inference import TCrowdModel
from repro.utils.exceptions import AssignmentError


@pytest.fixture()
def fast_model():
    return TCrowdModel(max_iterations=6, m_step_iterations=10)


class TestBatchAssignment:
    def test_len_and_total_gain(self):
        batch = BatchAssignment("w", ((0, 0), (1, 1)), (0.5, 0.25))
        assert len(batch) == 2
        assert batch.total_gain == pytest.approx(0.75)


class TestCandidateFiltering:
    def test_excludes_cells_answered_by_worker(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(mixed_schema, model=fast_model)
        worker = mixed_answers.workers[0]
        candidates = assigner.candidate_cells(worker, mixed_answers)
        answered = {
            (a.row, a.col) for a in mixed_answers.answers_by_worker(worker)
        }
        assert not (set(candidates) & answered)

    def test_max_answers_per_cell_cap(self, mixed_schema, mixed_answers, fast_model):
        counts = mixed_answers.answer_counts()
        cap = int(counts.max())
        assigner = TCrowdAssigner(
            mixed_schema, model=fast_model, max_answers_per_cell=cap
        )
        candidates = assigner.candidate_cells("brand-new-worker", mixed_answers)
        saturated = {(i, j) for (i, j) in mixed_schema.cells() if counts[i, j] >= cap}
        assert not (set(candidates) & saturated)


class TestTCrowdAssigner:
    def test_select_returns_requested_batch(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(mixed_schema, model=fast_model, use_structure=False)
        batch = assigner.select("expert", mixed_answers, k=3)
        assert len(batch) == 3
        assert len(set(batch.cells)) == 3
        assert all(0 <= row < mixed_schema.num_rows for row, _col in batch.cells)

    def test_selected_cells_have_top_gains(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(mixed_schema, model=fast_model, use_structure=False)
        batch = assigner.select("expert", mixed_answers, k=2)
        assert batch.gains[0] >= batch.gains[1]

    def test_structure_aware_selection_runs(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(mixed_schema, model=fast_model, use_structure=True)
        batch = assigner.select("good", mixed_answers, k=2)
        assert len(batch) == 2

    def test_names_distinguish_modes(self, mixed_schema, fast_model):
        structured = TCrowdAssigner(mixed_schema, model=fast_model, use_structure=True)
        inherent = TCrowdAssigner(mixed_schema, model=fast_model, use_structure=False)
        assert "structure" in structured.name.lower()
        assert "inherent" in inherent.name.lower()

    def test_requires_positive_k(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(mixed_schema, model=fast_model)
        with pytest.raises(AssignmentError):
            assigner.select("expert", mixed_answers, k=0)

    def test_requires_seeded_answers(self, mixed_schema, fast_model):
        from repro.core.answers import AnswerSet

        assigner = TCrowdAssigner(mixed_schema, model=fast_model)
        with pytest.raises(AssignmentError):
            assigner.select("expert", AnswerSet(mixed_schema), k=1)

    def test_invalid_refit_every(self, mixed_schema, fast_model):
        with pytest.raises(AssignmentError):
            TCrowdAssigner(mixed_schema, model=fast_model, refit_every=0)

    def test_refit_every_caches_inference(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(
            mixed_schema, model=fast_model, refit_every=1000, use_structure=False
        )
        assigner.select("expert", mixed_answers, k=1)
        first = assigner.last_result
        # A second select with unchanged answers must not refit.
        assigner.select("good", mixed_answers, k=1)
        assert assigner.last_result is first

    def test_observe_refreshes_when_stale(self, mixed_schema, mixed_answers, fast_model):
        assigner = TCrowdAssigner(
            mixed_schema, model=fast_model, refit_every=1, use_structure=False
        )
        assigner.select("expert", mixed_answers, k=1)
        first = assigner.last_result
        grown = mixed_answers.copy()
        grown.add_answer("expert", 0, 0, mixed_schema.columns[0].labels[0])
        assigner.observe(grown)
        assert assigner.last_result is not first

    def test_no_candidates_raises(self, mixed_schema, fast_model):
        from repro.core.answers import AnswerSet

        answers = AnswerSet(mixed_schema)
        # The worker answers every cell, so nothing is left to assign to them.
        for i in range(mixed_schema.num_rows):
            for j, column in enumerate(mixed_schema.columns):
                value = column.labels[0] if column.is_categorical else 1.0
                answers.add_answer("busy", i, j, value)
        assigner = TCrowdAssigner(mixed_schema, model=fast_model)
        with pytest.raises(AssignmentError):
            assigner.select("busy", answers, k=1)
