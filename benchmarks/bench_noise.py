"""Benchmark: Figure 10 — robustness to noise in the workers' answers."""

from conftest import FAST_MODEL, run_once

from repro.experiments import run_figure10


def test_figure10_noise_robustness(benchmark, report_writer):
    """Regenerate Figure 10 on a reduced Celebrity table."""
    report = run_once(
        benchmark, run_figure10, gammas=(0.1, 0.2, 0.3, 0.4), seed=7, trials=1,
        num_rows=40, model_kwargs=FAST_MODEL,
    )
    report_writer(report)
    assert [row[0] for row in report.rows] == [0.1, 0.2, 0.3, 0.4]
    headers = report.headers
    tcrowd_col = headers.index("T-Crowd error")
    mv_col = headers.index("MV error")
    # T-Crowd stays at least as robust as majority voting at the highest noise level.
    assert report.rows[-1][tcrowd_col] <= report.rows[-1][mv_col] + 0.02
